(** The shard map: which tables are hash-distributed on which column,
    which tables are replicated to every shard, and a generation counter
    versioning the whole layout (mixed into plan-cache keys so templates
    installed under one layout never serve another).

    Modeled on hash-distributed tables in MPP systems (Greenplum, the
    paper's backend; Citus): a {e distributed} table's rows are
    partitioned by a hash of the distribution column, a {e replicated}
    (reference) table is fully copied to every shard, and anything else
    is only present on the coordinator. *)

type t = {
  sm_shards : int;  (** number of shards (>= 1) *)
  mutable sm_distributed : (string * string) list;
      (** lowercase table name -> lowercase distribution column *)
  mutable sm_replicated : string list;  (** lowercase table names *)
  mutable sm_generation : int;
}

let create ~shards ~(distributions : (string * string) list) : t =
  if shards < 1 then invalid_arg "Shardmap.create: shards must be >= 1";
  {
    sm_shards = shards;
    sm_distributed =
      List.map
        (fun (t, c) ->
          (String.lowercase_ascii t, String.lowercase_ascii c))
        distributions;
    sm_replicated = [];
    (* generation starts at 1: an engine without a sharder keys its
       plan-cache entries with generation 0, so the two key spaces never
       overlap *)
    sm_generation = 1;
  }

let shards t = t.sm_shards
let generation t = t.sm_generation
let bump t = t.sm_generation <- t.sm_generation + 1

let distribution_of t table =
  List.assoc_opt (String.lowercase_ascii table) t.sm_distributed

let is_distributed t table = distribution_of t table <> None

let is_replicated t table =
  List.mem (String.lowercase_ascii table) t.sm_replicated

(** Known to exist on every shard (distributed or replicated). Tables
    outside this set — session temps, CTAS results the cluster did not
    broadcast — force coordinator-only execution. *)
let known t table = is_distributed t table || is_replicated t table

let add_replicated t table =
  let l = String.lowercase_ascii table in
  if not (List.mem l t.sm_replicated) then begin
    t.sm_replicated <- l :: t.sm_replicated;
    bump t
  end

(** Forget a table entirely (dropped, or mutated in a way the cluster
    cannot mirror onto the shards) — routing falls back to the
    coordinator for statements that mention it. *)
let remove_table t table =
  let l = String.lowercase_ascii table in
  if List.mem_assoc l t.sm_distributed || List.mem l t.sm_replicated then begin
    t.sm_distributed <- List.remove_assoc l t.sm_distributed;
    t.sm_replicated <- List.filter (fun n -> n <> l) t.sm_replicated;
    bump t
  end

(* ------------------------------------------------------------------ *)
(* Hash partitioning                                                   *)
(* ------------------------------------------------------------------ *)

(* FNV-1a over the value's canonical text: stable across runs (no seed),
   so a literal in a query pins to the same shard that ingested the row *)
let hash_string (s : string) : int =
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x01000193 land 0x3FFFFFFF)
    s;
  !h

let canon (v : Pgdb.Value.t) : string =
  match v with
  | Pgdb.Value.Null -> "\x00null"
  | Pgdb.Value.Bool b -> string_of_bool b
  | Pgdb.Value.Int i -> Int64.to_string i
  | Pgdb.Value.Float f -> string_of_float f
  | Pgdb.Value.Str s -> s
  | Pgdb.Value.Date d -> "d" ^ string_of_int d
  | Pgdb.Value.Time tm -> "t" ^ string_of_int tm
  | Pgdb.Value.Timestamp n -> "p" ^ Int64.to_string n

(** The shard owning rows whose distribution column holds [v]. *)
let shard_of_value t (v : Pgdb.Value.t) : int =
  hash_string (canon v) mod t.sm_shards

(** The shard owning rows pinned by a literal equality on the
    distribution column. *)
let shard_of_lit t (l : Sqlast.Ast.lit) : int =
  let v =
    match l with
    | Sqlast.Ast.Null -> Pgdb.Value.Null
    | Sqlast.Ast.Bool b -> Pgdb.Value.Bool b
    | Sqlast.Ast.Int i -> Pgdb.Value.Int i
    | Sqlast.Ast.Float f -> Pgdb.Value.Float f
    | Sqlast.Ast.Str s -> Pgdb.Value.Str s
  in
  shard_of_value t v
