(** The side-by-side testing framework (paper Section 5).

    "As we implemented features from the customer workload, we needed a way
    to ensure the exact same behavior to the application as before. For
    this purpose we built a side-by-side testing framework..."

    Each Q query runs twice: on the kdb interpreter (the reference
    semantics) and through Hyper-Q against the PG backend. Results are
    normalised — keyed tables unkeyed, dictionaries tabulated, floats
    compared within a tolerance, temporal values compared numerically —
    and diffed cell by cell. *)

module QV = Qvalue.Value
module QA = Qvalue.Atom

type verdict =
  | Match
  | Mismatch of string  (** human-readable first difference *)
  | Kdb_error of string
  | Hyperq_error of string

type report = { query : string; verdict : verdict }

(* ------------------------------------------------------------------ *)
(* Normalisation                                                       *)
(* ------------------------------------------------------------------ *)

(* compare atoms numerically across types, with a relative tolerance for
   floats (aggregation orders differ between the two engines) *)
let atoms_agree (a : QA.t) (b : QA.t) : bool =
  match (QA.is_null a, QA.is_null b) with
  | true, true -> true
  | true, false | false, true -> false
  | false, false -> (
      match (a, b) with
      | QA.Sym x, QA.Sym y -> x = y
      | QA.Char x, QA.Char y -> x = y
      | _ -> (
          match (QA.to_float a, QA.to_float b) with
          | exception _ -> QA.equal a b
          | x, y ->
              let scale = Float.max 1.0 (Float.max (Float.abs x) (Float.abs y)) in
              Float.abs (x -. y) /. scale < 1e-9))

let rec values_agree (a : QV.t) (b : QV.t) : string option =
  let a = QV.unkey a and b = QV.unkey b in
  match (a, b) with
  | QV.Atom x, QV.Atom y ->
      if atoms_agree x y then None
      else
        Some
          (Printf.sprintf "atom %s vs %s" (QA.to_string x) (QA.to_string y))
  | QV.Table ta, QV.Table tb ->
      if ta.QV.cols <> tb.QV.cols then
        Some
          (Printf.sprintf "columns [%s] vs [%s]"
             (String.concat ";" (Array.to_list ta.QV.cols))
             (String.concat ";" (Array.to_list tb.QV.cols)))
      else if QV.table_length ta <> QV.table_length tb then
        Some
          (Printf.sprintf "row counts %d vs %d" (QV.table_length ta)
             (QV.table_length tb))
      else begin
        let issue = ref None in
        Array.iteri
          (fun ci cname ->
            if !issue = None then
              let ca = ta.QV.data.(ci) and cb = tb.QV.data.(ci) in
              for i = 0 to QV.table_length ta - 1 do
                if !issue = None then
                  match values_agree (QV.index ca i) (QV.index cb i) with
                  | Some d ->
                      issue :=
                        Some (Printf.sprintf "column %s row %d: %s" cname i d)
                  | None -> ()
              done)
          ta.QV.cols;
        !issue
      end
  | QV.Dict (ka, va), QV.Dict (kb, vb) -> (
      match values_agree ka kb with
      | Some d -> Some ("dict keys: " ^ d)
      | None -> (
          match values_agree va vb with
          | Some d -> Some ("dict values: " ^ d)
          | None -> None))
  | (QV.Vector _ | QV.List _), (QV.Vector _ | QV.List _) ->
      let xs = QV.elements a and ys = QV.elements b in
      if Array.length xs <> Array.length ys then
        Some
          (Printf.sprintf "lengths %d vs %d" (Array.length xs)
             (Array.length ys))
      else begin
        let issue = ref None in
        Array.iteri
          (fun i x ->
            if !issue = None then
              match values_agree x ys.(i) with
              | Some d -> issue := Some (Printf.sprintf "index %d: %s" i d)
              | None -> ())
          xs;
        !issue
      end
  | _ ->
      Some
        (Printf.sprintf "shapes differ: %s vs %s"
           (Qvalue.Qprint.to_string a) (Qvalue.Qprint.to_string b))

(* ------------------------------------------------------------------ *)
(* Harness                                                             *)
(* ------------------------------------------------------------------ *)

type harness = {
  kdb : Kdb.Server.t;
  engine : Hyperq.Engine.t;
}

(** Build a harness over one generated dataset: the same data is loaded
    into the kdb interpreter and (via {!Workload.Marketdata.load_pg}) into
    the PG backend Hyper-Q talks to. *)
let create (d : Workload.Marketdata.dataset) : harness =
  let kdb = Kdb.Server.create () in
  List.iter
    (fun (name, v) -> Kdb.Server.load kdb name v)
    (Workload.Marketdata.q_tables d);
  let db = Pgdb.Db.create () in
  Workload.Marketdata.load_pg db d;
  let sess = Pgdb.Db.open_session db in
  let engine = Hyperq.Engine.create (Hyperq.Backend.of_pgdb_session sess) in
  { kdb; engine }

(** Run one Q program on both sides and compare. *)
let compare_query (h : harness) ?(setup = []) (src : string) : verdict =
  let kdb_result =
    List.iter
      (fun s -> ignore (Kdb.Server.query h.kdb ~client:0 s))
      setup;
    Kdb.Server.query h.kdb ~client:0 src
  in
  let hq_result =
    List.iter
      (fun s -> ignore (Hyperq.Engine.try_run h.engine s))
      setup;
    Hyperq.Engine.try_run h.engine src
  in
  match (kdb_result, hq_result) with
  | Error e, _ -> Kdb_error e
  | _, Error e -> Hyperq_error e
  | Ok kv, Ok { Hyperq.Engine.value = Some hv; _ } -> (
      match values_agree kv hv with
      | None -> Match
      | Some d -> Mismatch d)
  | Ok _, Ok { Hyperq.Engine.value = None; _ } -> Match (* definitions *)

(** Run the whole workload; returns one report per query. *)
let run_workload (d : Workload.Marketdata.dataset) : report list =
  let h = create d in
  List.map
    (fun (q : Workload.Analytical.query) ->
      {
        query = Printf.sprintf "Q%02d %s" q.Workload.Analytical.id q.Workload.Analytical.name;
        verdict = compare_query h ~setup:q.Workload.Analytical.setup q.Workload.Analytical.text;
      })
    (Workload.Analytical.queries d)

let verdict_str = function
  | Match -> "match"
  | Mismatch d -> "MISMATCH: " ^ d
  | Kdb_error e -> "kdb error: " ^ e
  | Hyperq_error e -> "hyper-q error: " ^ e
