(** The side-by-side testing framework (paper Section 5): every Q query
    runs on the kdb interpreter and through Hyper-Q→pgdb; results are
    normalised (keyed tables unkeyed, floats within tolerance, temporal
    values compared numerically) and diffed cell by cell. *)

type verdict =
  | Match
  | Mismatch of string  (** human-readable first difference *)
  | Kdb_error of string
  | Hyperq_error of string

type report = { query : string; verdict : verdict }

(** [None] when the two values agree after normalisation, otherwise the
    first difference. *)
val values_agree : Qvalue.Value.t -> Qvalue.Value.t -> string option

type harness = { kdb : Kdb.Server.t; engine : Hyperq.Engine.t }

(** Load one generated dataset into both stacks. *)
val create : Workload.Marketdata.dataset -> harness

(** Run one Q program (with optional setup statements) on both sides. *)
val compare_query : harness -> ?setup:string list -> string -> verdict

(** The full 25-query Analytical Workload, one report per query. *)
val run_workload : Workload.Marketdata.dataset -> report list

val verdict_str : verdict -> string
