(** Abstract syntax for the PostgreSQL-compatible SQL dialect.

    This is both the target of Hyper-Q's serializer and the output of the
    pgdb parser, so translated queries are round-tripped through real SQL
    text — the same contract a real PG backend would impose. *)

type lit =
  | Null
  | Bool of bool
  | Int of int64
  | Float of float
  | Str of string

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Eq
  | Neq
  | Lt
  | Le
  | Gt
  | Ge
  | And
  | Or
  | Concat
  | IsDistinctFrom
  | IsNotDistinctFrom

type unop = Not | Neg

type direction = Asc | Desc

type frame_bound = UnboundedPreceding | Preceding of int | CurrentRow | Following of int | UnboundedFollowing

type frame = { frame_mode : [ `Rows | `Range ]; lo : frame_bound; hi : frame_bound }

type expr =
  | Lit of lit
  | Col of string option * string  (** optional qualifier, column name *)
  | Star  (** the star projector, in select lists and count-star *)
  | Bin of binop * expr * expr
  | Un of unop * expr
  | IsNull of expr
  | IsNotNull of expr
  | In of expr * expr list
  | Between of expr * expr * expr
  | Case of (expr * expr) list * expr option
  | Cast of expr * Catalog.Sqltype.t
  | Fun of string * expr list  (** scalar function call *)
  | Agg of { agg_name : string; distinct : bool; args : expr list }
  | Window of {
      win_fn : string;
      win_args : expr list;
      partition : expr list;
      order : (expr * direction) list;
      frame : frame option;
    }
  | Like of expr * expr

type from_item =
  | TableRef of string * string option  (** table, alias *)
  | SubqueryRef of select * string  (** subquery requires an alias *)
  | UnionRef of select list * string
      (** parenthesised UNION ALL of selects, with an alias *)
  | JoinItem of {
      jkind : [ `Inner | `Left | `Cross ];
      left : from_item;
      right : from_item;
      on : expr option;
    }

and select = {
  distinct : bool;
  projs : proj list;
  from : from_item option;
  where : expr option;
  group_by : expr list;
  having : expr option;
  order_by : (expr * direction) list;
  limit : int option;
  offset : int option;
}

and proj = { p_expr : expr; p_alias : string option }

type col_def = { cd_name : string; cd_type : Catalog.Sqltype.t }

type stmt =
  | Select of select
  | CreateTable of { ct_temp : bool; ct_name : string; ct_cols : col_def list }
  | CreateTableAs of { cta_temp : bool; cta_name : string; cta_query : select }
  | CreateView of { cv_name : string; cv_query : select }
  | InsertValues of { ins_table : string; ins_cols : string list; rows : lit list list }
  | DropTable of { if_exists : bool; name : string }
  | DropView of { if_exists : bool; name : string }

(* ------------------------------------------------------------------ *)
(* Constructors                                                        *)
(* ------------------------------------------------------------------ *)

let col name = Col (None, name)
let qcol q name = Col (Some q, name)
let int i = Lit (Int (Int64.of_int i))
let str s = Lit (Str s)
let proj ?alias e = { p_expr = e; p_alias = alias }

let empty_select =
  {
    distinct = false;
    projs = [];
    from = None;
    where = None;
    group_by = [];
    having = None;
    order_by = [];
    limit = None;
    offset = None;
  }

(* ------------------------------------------------------------------ *)
(* Printing: AST -> SQL text                                           *)
(* ------------------------------------------------------------------ *)

let binop_str = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Eq -> "="
  | Neq -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | And -> "AND"
  | Or -> "OR"
  | Concat -> "||"
  | IsDistinctFrom -> "IS DISTINCT FROM"
  | IsNotDistinctFrom -> "IS NOT DISTINCT FROM"

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c -> if c = '\'' then Buffer.add_string buf "''" else Buffer.add_char buf c)
    s;
  Buffer.contents buf

let lit_str = function
  | Null -> "NULL"
  | Bool b -> if b then "TRUE" else "FALSE"
  | Int i -> Int64.to_string i
  | Float f ->
      if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
      else Printf.sprintf "%.17g" f
  | Str s -> Printf.sprintf "'%s'" (escape_string s)

let quote_ident name =
  (* quote identifiers that are not plain lowercase words, preserving the
     case-sensitive column names coming from Q *)
  let plain =
    String.length name > 0
    && (match name.[0] with 'a' .. 'z' | '_' -> true | _ -> false)
    && String.for_all
         (function 'a' .. 'z' | '0' .. '9' | '_' -> true | _ -> false)
         name
  in
  if plain then name else "\"" ^ name ^ "\""

let direction_str = function Asc -> "ASC" | Desc -> "DESC"

let frame_bound_str = function
  | UnboundedPreceding -> "UNBOUNDED PRECEDING"
  | Preceding n -> Printf.sprintf "%d PRECEDING" n
  | CurrentRow -> "CURRENT ROW"
  | Following n -> Printf.sprintf "%d FOLLOWING" n
  | UnboundedFollowing -> "UNBOUNDED FOLLOWING"

let rec expr_str (e : expr) : string =
  match e with
  | Lit l -> lit_str l
  | Col (None, c) -> quote_ident c
  | Col (Some q, c) -> quote_ident q ^ "." ^ quote_ident c
  | Star -> "*"
  | Bin (op, a, b) ->
      Printf.sprintf "(%s %s %s)" (expr_str a) (binop_str op) (expr_str b)
  | Un (Not, a) -> Printf.sprintf "(NOT %s)" (expr_str a)
  | Un (Neg, a) -> Printf.sprintf "(- %s)" (expr_str a)
  | IsNull a -> Printf.sprintf "(%s IS NULL)" (expr_str a)
  | IsNotNull a -> Printf.sprintf "(%s IS NOT NULL)" (expr_str a)
  | In (a, es) ->
      Printf.sprintf "(%s IN (%s))" (expr_str a)
        (String.concat ", " (List.map expr_str es))
  | Between (a, lo, hi) ->
      Printf.sprintf "(%s BETWEEN %s AND %s)" (expr_str a) (expr_str lo)
        (expr_str hi)
  | Case (branches, else_) ->
      let b =
        List.map
          (fun (c, r) ->
            Printf.sprintf "WHEN %s THEN %s" (expr_str c) (expr_str r))
          branches
      in
      let e' =
        match else_ with
        | Some r -> Printf.sprintf " ELSE %s" (expr_str r)
        | None -> ""
      in
      Printf.sprintf "(CASE %s%s END)" (String.concat " " b) e'
  | Cast (a, ty) ->
      Printf.sprintf "CAST(%s AS %s)" (expr_str a) (Catalog.Sqltype.name ty)
  | Fun (f, args) ->
      Printf.sprintf "%s(%s)" f (String.concat ", " (List.map expr_str args))
  | Agg { agg_name; distinct; args } ->
      Printf.sprintf "%s(%s%s)" agg_name
        (if distinct then "DISTINCT " else "")
        (String.concat ", " (List.map expr_str args))
  | Window { win_fn; win_args; partition; order; frame } ->
      let part =
        if partition = [] then ""
        else
          "PARTITION BY " ^ String.concat ", " (List.map expr_str partition)
      in
      let ord =
        if order = [] then ""
        else
          "ORDER BY "
          ^ String.concat ", "
              (List.map
                 (fun (e, d) -> expr_str e ^ " " ^ direction_str d)
                 order)
      in
      let fr =
        match frame with
        | None -> ""
        | Some { frame_mode; lo; hi } ->
            Printf.sprintf "%s BETWEEN %s AND %s"
              (match frame_mode with `Rows -> "ROWS" | `Range -> "RANGE")
              (frame_bound_str lo) (frame_bound_str hi)
      in
      let over =
        [ part; ord; fr ] |> List.filter (fun s -> s <> "") |> String.concat " "
      in
      Printf.sprintf "%s(%s) OVER (%s)" win_fn
        (String.concat ", " (List.map expr_str win_args))
        over
  | Like (a, p) -> Printf.sprintf "(%s LIKE %s)" (expr_str a) (expr_str p)

and from_str = function
  | TableRef (t, None) -> quote_ident t
  | TableRef (t, Some a) -> quote_ident t ^ " AS " ^ quote_ident a
  | SubqueryRef (s, a) ->
      Printf.sprintf "(%s) AS %s" (select_str s) (quote_ident a)
  | UnionRef (ss, a) ->
      Printf.sprintf "(%s) AS %s"
        (String.concat " UNION ALL " (List.map select_str ss))
        (quote_ident a)
  | JoinItem { jkind; left; right; on } ->
      let kw =
        match jkind with
        | `Inner -> "INNER JOIN"
        | `Left -> "LEFT OUTER JOIN"
        | `Cross -> "CROSS JOIN"
      in
      let cond =
        match on with Some e -> " ON " ^ expr_str e | None -> ""
      in
      Printf.sprintf "%s %s %s%s" (from_str left) kw (from_str right) cond

and select_str (s : select) : string =
  let buf = Buffer.create 128 in
  Buffer.add_string buf "SELECT ";
  if s.distinct then Buffer.add_string buf "DISTINCT ";
  let proj p =
    match p.p_alias with
    | Some a -> expr_str p.p_expr ^ " AS " ^ quote_ident a
    | None -> expr_str p.p_expr
  in
  Buffer.add_string buf
    (if s.projs = [] then "*" else String.concat ", " (List.map proj s.projs));
  (match s.from with
  | Some f ->
      Buffer.add_string buf " FROM ";
      Buffer.add_string buf (from_str f)
  | None -> ());
  (match s.where with
  | Some w ->
      Buffer.add_string buf " WHERE ";
      Buffer.add_string buf (expr_str w)
  | None -> ());
  if s.group_by <> [] then begin
    Buffer.add_string buf " GROUP BY ";
    Buffer.add_string buf (String.concat ", " (List.map expr_str s.group_by))
  end;
  (match s.having with
  | Some h ->
      Buffer.add_string buf " HAVING ";
      Buffer.add_string buf (expr_str h)
  | None -> ());
  if s.order_by <> [] then begin
    Buffer.add_string buf " ORDER BY ";
    Buffer.add_string buf
      (String.concat ", "
         (List.map
            (fun (e, d) -> expr_str e ^ " " ^ direction_str d)
            s.order_by))
  end;
  (match s.limit with
  | Some n -> Buffer.add_string buf (Printf.sprintf " LIMIT %d" n)
  | None -> ());
  (match s.offset with
  | Some n -> Buffer.add_string buf (Printf.sprintf " OFFSET %d" n)
  | None -> ());
  Buffer.contents buf

let stmt_str = function
  | Select s -> select_str s
  | CreateTable { ct_temp; ct_name; ct_cols } ->
      Printf.sprintf "CREATE %sTABLE %s (%s)"
        (if ct_temp then "TEMPORARY " else "")
        (quote_ident ct_name)
        (String.concat ", "
           (List.map
              (fun c ->
                quote_ident c.cd_name ^ " " ^ Catalog.Sqltype.name c.cd_type)
              ct_cols))
  | CreateTableAs { cta_temp; cta_name; cta_query } ->
      Printf.sprintf "CREATE %sTABLE %s AS %s"
        (if cta_temp then "TEMPORARY " else "")
        (quote_ident cta_name) (select_str cta_query)
  | CreateView { cv_name; cv_query } ->
      Printf.sprintf "CREATE VIEW %s AS %s" (quote_ident cv_name)
        (select_str cv_query)
  | InsertValues { ins_table; ins_cols; rows } ->
      let cols =
        if ins_cols = [] then ""
        else
          Printf.sprintf " (%s)"
            (String.concat ", " (List.map quote_ident ins_cols))
      in
      Printf.sprintf "INSERT INTO %s%s VALUES %s" (quote_ident ins_table) cols
        (String.concat ", "
           (List.map
              (fun row ->
                "(" ^ String.concat ", " (List.map lit_str row) ^ ")")
              rows))
  | DropTable { if_exists; name } ->
      Printf.sprintf "DROP TABLE %s%s"
        (if if_exists then "IF EXISTS " else "")
        (quote_ident name)
  | DropView { if_exists; name } ->
      Printf.sprintf "DROP VIEW %s%s"
        (if if_exists then "IF EXISTS " else "")
        (quote_ident name)

let pp_stmt ppf s = Format.pp_print_string ppf (stmt_str s)
