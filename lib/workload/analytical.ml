(** The Analytical Workload (paper Section 6).

    "All experiments are conducted on an Analytical Workload driven from
    customer use-cases ... 25 queries that involve three or more wide
    tables (e.g., tables with more than 500 columns), joins, and various
    kinds of analytical aggregate functions."

    The customer queries are proprietary, so this module synthesises 25
    queries with exactly the stated characteristics over the market-data
    schema. As in the paper, queries 10, 18, 19 and 20 join the most
    tables — they are the translation-time spikes of Figure 6. *)

type query = {
  id : int;
  name : string;
  text : string;  (** Q source *)
  tables : string list;  (** tables touched, for the experiment index *)
  setup : string list;  (** Q statements to run once before the query *)
}

let q id name ?(tables = [ "trades" ]) ?(setup = []) text =
  { id; name; text; tables; setup }

(** The 25 queries, parameterized by the generated dataset (symbol literals
    are embedded so each run is self-contained). *)
let queries (d : Marketdata.dataset) : query list =
  let sym i = d.Marketdata.syms.(i mod Array.length d.Marketdata.syms) in
  let s0 = sym 0 and s1 = sym 1 and s2 = sym 2 in
  [
    q 1 "filtered scan"
      (Printf.sprintf
         "select Price, Size from trades where Symbol in `%s`%s, Price>10.0"
         s0 s1);
    q 2 "vwap by symbol"
      "select vwap:(sum Price*Size)%sum Size by Symbol from trades";
    q 3 "ohlc-style stats"
      "select o:first Price, h:max Price, l:min Price, c:last Price by \
       Symbol from trades";
    q 4 "count by symbol and venue"
      "select n:count Price, qty:sum Size by Symbol, Exch from trades";
    q 5 "point-in-time join (Example 1)" ~tables:[ "trades"; "quotes" ]
      "aj[`Symbol`Time; select Symbol, Time, Price from trades; select \
       Symbol, Time, Bid, Ask from quotes]";
    q 6 "spread statistics" ~tables:[ "quotes" ]
      "select avg_spread:avg Ask-Bid, max_spread:max Ask-Bid by Symbol from \
       quotes";
    q 7 "sector volume" ~tables:[ "trades"; "secmaster_w" ]
      "select qty:sum Size by Sector from trades lj secmaster_w";
    q 8 "beta-weighted flow" ~tables:[ "trades"; "risk_w" ]
      "select exposure:sum Beta*Price*Size by Symbol from trades lj risk_w";
    q 9 "mid-price enrichment" ~tables:[ "quotes" ]
      "select m:avg Mid by Symbol from update Mid:(Bid+Ask)%2.0 from quotes";
    q 10 "prevailing quote + reference data"
      ~tables:[ "trades"; "quotes"; "secmaster_w"; "risk_w" ]
      "select eff:avg Price-Bid, n:count Price by Sector from (aj[`Symbol`Time; \
       select Symbol, Time, Price from trades; select Symbol, Time, Bid \
       from quotes] lj secmaster_w) lj risk_w";
    q 11 "notional ranking" ~tables:[ "trades" ]
      "3#`notional xdesc select notional:sum Price*Size by Symbol from trades";
    q 12 "moving average"
      (Printf.sprintf
         "select Time, m:5 mavg Price from trades where Symbol=`%s" s0);
    q 13 "max-price trades (fby)"
      "select from trades where Price=(max;Price) fby Symbol";
    q 14 "momentum (deltas)"
      (Printf.sprintf
         "select Time, d:deltas Price from trades where Symbol=`%s" s1);
    q 15 "distinct venue count"
      "select venues:count distinct Exch by Symbol from trades";
    q 16 "time buckets"
      "select n:count Price, qty:sum Size by bucket:60000 xbar Time from \
       trades";
    q 17 "outlier-free stats"
      "select m:avg Price, s:dev Price by Symbol from trades where \
       Price<500.0, Size<5000";
    q 18 "wide-table risk report"
      ~tables:[ "trades"; "secmaster_w"; "risk_w"; "limits_w" ]
      "select gross:sum Price*Size, wbeta:sum Beta*Size, cap:max \
       MaxNotional by Sector from ((trades lj secmaster_w) lj risk_w) lj \
       limits_w";
    q 19 "execution quality by sector and venue"
      ~tables:[ "trades"; "quotes"; "secmaster_w" ]
      "select slip:avg Price-Bid, n:count Price by Sector, Exch from \
       aj[`Symbol`Time; select Symbol, Exch, Time, Price from trades; \
       select Symbol, Time, Bid from quotes] lj secmaster_w";
    q 20 "full reference join"
      ~tables:[ "trades"; "secmaster_w"; "risk_w"; "limits_w" ]
      "select qty:sum Size, risk:sum Var99*Size, lot:max Lot, cap:min \
       MaxQty by Sector, Exch from ((trades lj secmaster_w) lj risk_w) lj \
       limits_w where Price>5.0";
    q 21 "quote imbalance" ~tables:[ "quotes" ]
      "select imb:(sum BSize-ASize)%sum BSize+ASize by Symbol from quotes";
    q 22 "parameterized sweep (UDF unrolling)"
      ~setup:
        [
          "sweep:{[s] dt: select Price, Size from trades where Symbol=s; \
           :select vol:sum Size, px:avg Price from dt}";
        ]
      (Printf.sprintf "sweep[`%s]" s2);
    q 23 "group max broadcast (update by)"
      "select hit:count Price from (update mx:max Price by Symbol from \
       trades) where Price=mx";
    q 24 "session window"
      "select n:count Price, qty:sum Size by Symbol from trades where Time \
       within 10:00:00.000 14:00:00.000";
    q 25 "top of book at close" ~tables:[ "quotes" ]
      "select last_bid:last Bid, last_ask:last Ask by Symbol from quotes";
  ]

(** Queries known to join three or more tables — the paper calls out 10,
    18, 19, 20 as the slowest to translate. *)
let heavy_ids = [ 10; 18; 19; 20 ]
