(** Deterministic TAQ-style market data generator.

    The paper's evaluation uses a customer workload over NYSE TAQ-like
    market data (trades and quotes) joined with several wide reference
    tables (>500 columns). TAQ itself is a commercial dataset, so this
    module synthesises the same shape: random-walk prices, bid/ask spreads
    around the prevailing price, exchange codes, and wide per-symbol
    reference tables. Generation is seeded and fully deterministic. *)

module S = Catalog.Schema
module Ty = Catalog.Sqltype
module V = Pgdb.Value
module QV = Qvalue.Value
module QA = Qvalue.Atom

(* xorshift64* PRNG: deterministic across runs and platforms *)
type rng = { mutable state : int64 }

let rng seed = { state = Int64.of_int (if seed = 0 then 0x9E3779B9 else seed) }

let next (r : rng) : int64 =
  let x = r.state in
  let x = Int64.logxor x (Int64.shift_left x 13) in
  let x = Int64.logxor x (Int64.shift_right_logical x 7) in
  let x = Int64.logxor x (Int64.shift_left x 17) in
  r.state <- x;
  x

let rand_int r bound =
  Int64.to_int (Int64.rem (Int64.logand (next r) Int64.max_int) (Int64.of_int bound))

let rand_float r = float_of_int (rand_int r 1_000_000) /. 1_000_000.0

type scale = {
  symbols : int;  (** number of distinct symbols *)
  trades_per_symbol : int;
  quotes_per_symbol : int;
  wide_columns : int;  (** columns per wide reference table (>500 in paper) *)
}

let small_scale = { symbols = 8; trades_per_symbol = 40; quotes_per_symbol = 80; wide_columns = 40 }

let paper_scale =
  { symbols = 25; trades_per_symbol = 40; quotes_per_symbol = 80; wide_columns = 510 }

let symbol_names n =
  Array.init n (fun i ->
      let letter k = Char.chr (Char.code 'A' + (k mod 26)) in
      Printf.sprintf "%c%c%c" (letter i) (letter (i / 26 + i)) (letter (i * 7)))

let sectors = [| "tech"; "energy"; "finance"; "health"; "materials" |]
let exchanges = [| "N"; "Q"; "A"; "B" |]

let trade_date = 6021 (* 2016.06.26 *)

(* one generated tick *)
type trade = { t_sym : string; t_time : int; t_price : float; t_size : int; t_exch : string }
type quote = { q_sym : string; q_time : int; q_bid : float; q_ask : float; q_bsize : int; q_asize : int }

type dataset = {
  scale : scale;
  syms : string array;
  trades : trade array;
  quotes : quote array;
}

(** Generate a dataset: per symbol, a random-walk price path sampled into
    interleaved quotes (always at or before the trades they precede) and
    trades, all sorted by (symbol-independent) time as a real feed is. *)
let generate ?(seed = 20160626) (scale : scale) : dataset =
  let r = rng seed in
  let syms = symbol_names scale.symbols in
  let trades = ref [] and quotes = ref [] in
  Array.iter
    (fun sym ->
      let base = 20.0 +. (rand_float r *. 180.0) in
      let price = ref base in
      let open_ms = 9 * 3600 * 1000 + (30 * 60 * 1000) in
      let step = 6 * 3600 * 1000 / Stdlib.max 1 scale.trades_per_symbol in
      for i = 0 to scale.trades_per_symbol - 1 do
        price := Float.max 1.0 (!price +. ((rand_float r -. 0.5) *. 0.8));
        let time = open_ms + (i * step) + rand_int r (step / 2) in
        trades :=
          {
            t_sym = sym;
            t_time = time;
            t_price = Float.round (!price *. 100.) /. 100.;
            t_size = 100 * (1 + rand_int r 50);
            t_exch = exchanges.(rand_int r (Array.length exchanges));
          }
          :: !trades
      done;
      let qstep = 6 * 3600 * 1000 / Stdlib.max 1 scale.quotes_per_symbol in
      let qprice = ref base in
      for i = 0 to scale.quotes_per_symbol - 1 do
        qprice := Float.max 1.0 (!qprice +. ((rand_float r -. 0.5) *. 0.6));
        (* the first quote of each symbol lands just before the open, so a
           prevailing quote always exists for as-of joins *)
        let jitter = rand_int r (qstep / 2) in
        let time =
          if i = 0 then open_ms - 1000
          else open_ms - 1000 + (i * qstep) + jitter
        in
        let spread = 0.01 +. (rand_float r *. 0.1) in
        quotes :=
          {
            q_sym = sym;
            q_time = time;
            q_bid = Float.round ((!qprice -. spread) *. 100.) /. 100.;
            q_ask = Float.round ((!qprice +. spread) *. 100.) /. 100.;
            q_bsize = 100 * (1 + rand_int r 20);
            q_asize = 100 * (1 + rand_int r 20);
          }
          :: !quotes
      done)
    syms;
  let by_time_t a b = compare (a.t_time, a.t_sym) (b.t_time, b.t_sym) in
  let by_time_q a b = compare (a.q_time, a.q_sym) (b.q_time, b.q_sym) in
  let trades = Array.of_list !trades and quotes = Array.of_list !quotes in
  Array.sort by_time_t trades;
  Array.sort by_time_q quotes;
  { scale; syms; trades; quotes }

(* ------------------------------------------------------------------ *)
(* Loading into the PG backend                                         *)
(* ------------------------------------------------------------------ *)

let wide_col i = Printf.sprintf "attr%03d" i

let load_pg (db : Pgdb.Db.t) (d : dataset) : unit =
  (* trades *)
  Pgdb.Db.load_table db
    (S.table ~order_col:"hq_ord" "trades"
       [
         S.column "hq_ord" Ty.TBigint;
         S.column "Symbol" Ty.TVarchar;
         S.column "Date" Ty.TDate;
         S.column "Time" Ty.TTime;
         S.column "Price" Ty.TDouble;
         S.column "Size" Ty.TBigint;
         S.column "Exch" Ty.TVarchar;
       ])
    (List.mapi
       (fun i t ->
         [|
           V.Int (Int64.of_int i);
           V.Str t.t_sym;
           V.Date trade_date;
           V.Time t.t_time;
           V.Float t.t_price;
           V.Int (Int64.of_int t.t_size);
           V.Str t.t_exch;
         |])
       (Array.to_list d.trades));
  (* quotes *)
  Pgdb.Db.load_table db
    (S.table ~order_col:"hq_ord" "quotes"
       [
         S.column "hq_ord" Ty.TBigint;
         S.column "Symbol" Ty.TVarchar;
         S.column "Date" Ty.TDate;
         S.column "Time" Ty.TTime;
         S.column "Bid" Ty.TDouble;
         S.column "Ask" Ty.TDouble;
         S.column "BSize" Ty.TBigint;
         S.column "ASize" Ty.TBigint;
       ])
    (List.mapi
       (fun i q ->
         [|
           V.Int (Int64.of_int i);
           V.Str q.q_sym;
           V.Date trade_date;
           V.Time q.q_time;
           V.Float q.q_bid;
           V.Float q.q_ask;
           V.Int (Int64.of_int q.q_bsize);
           V.Int (Int64.of_int q.q_asize);
         |])
       (Array.to_list d.quotes));
  (* wide reference tables, keyed on Symbol (paper: "wide tables with more
     than 500 columns") *)
  let r = rng 77 in
  let wide name extra_cols =
    let cols =
      S.column "Symbol" Ty.TVarchar
      :: extra_cols
      @ List.init d.scale.wide_columns (fun i -> S.column (wide_col i) Ty.TDouble)
    in
    let rows =
      Array.to_list
        (Array.map
           (fun sym ->
             Array.of_list
               (V.Str sym
                :: List.map
                     (fun (c : S.column) ->
                       match c.S.col_type with
                       | Ty.TVarchar ->
                           V.Str sectors.(rand_int r (Array.length sectors))
                       | Ty.TBigint -> V.Int (Int64.of_int (rand_int r 1000))
                       | _ -> V.Float (rand_float r *. 10.0))
                     (extra_cols
                     @ List.init d.scale.wide_columns (fun i ->
                           S.column (wide_col i) Ty.TDouble))))
           d.syms)
    in
    Pgdb.Db.load_table db (S.table ~keys:[ "Symbol" ] name cols) rows
  in
  wide "secmaster_w" [ S.column "Sector" Ty.TVarchar; S.column "Lot" Ty.TBigint ];
  wide "risk_w" [ S.column "Beta" Ty.TDouble; S.column "Var99" Ty.TDouble ];
  wide "limits_w" [ S.column "MaxNotional" Ty.TDouble; S.column "MaxQty" Ty.TBigint ]

(* ------------------------------------------------------------------ *)
(* Loading into the kdb interpreter (for side-by-side testing)         *)
(* ------------------------------------------------------------------ *)

let q_tables (d : dataset) : (string * QV.t) list =
  let trades =
    QV.table
      [
        ("Symbol", QV.syms (Array.map (fun t -> t.t_sym) d.trades));
        ("Date", QV.Vector (Qvalue.Qtype.Date, Array.map (fun _ -> QA.Date trade_date) d.trades));
        ("Time", QV.Vector (Qvalue.Qtype.Time, Array.map (fun t -> QA.Time t.t_time) d.trades));
        ("Price", QV.floats (Array.map (fun t -> t.t_price) d.trades));
        ("Size", QV.longs (Array.map (fun t -> t.t_size) d.trades));
        ("Exch", QV.syms (Array.map (fun t -> t.t_exch) d.trades));
      ]
  in
  let quotes =
    QV.table
      [
        ("Symbol", QV.syms (Array.map (fun q -> q.q_sym) d.quotes));
        ("Date", QV.Vector (Qvalue.Qtype.Date, Array.map (fun _ -> QA.Date trade_date) d.quotes));
        ("Time", QV.Vector (Qvalue.Qtype.Time, Array.map (fun q -> QA.Time q.q_time) d.quotes));
        ("Bid", QV.floats (Array.map (fun q -> q.q_bid) d.quotes));
        ("Ask", QV.floats (Array.map (fun q -> q.q_ask) d.quotes));
        ("BSize", QV.longs (Array.map (fun q -> q.q_bsize) d.quotes));
        ("ASize", QV.longs (Array.map (fun q -> q.q_asize) d.quotes));
      ]
  in
  (* the wide tables must match the PG side exactly: regenerate with the
     same seed and column structure *)
  let r = rng 77 in
  let wide extra_cols =
    let extra_names = List.map fst extra_cols in
    let n = Array.length d.syms in
    let extra_data =
      List.map (fun (_, ty) -> (ty, Array.make n (QA.Null Qvalue.Qtype.Float))) extra_cols
    in
    let attr_data =
      List.init d.scale.wide_columns (fun _ -> Array.make n QA.(Null Qvalue.Qtype.Float))
    in
    Array.iteri
      (fun row _sym ->
        List.iter
          (fun (ty, arr) ->
            match ty with
            | `Sym -> arr.(row) <- QA.Sym sectors.(rand_int r (Array.length sectors))
            | `Long -> arr.(row) <- QA.Long (Int64.of_int (rand_int r 1000))
            | `Float -> arr.(row) <- QA.Float (rand_float r *. 10.0))
          extra_data;
        List.iter
          (fun arr -> arr.(row) <- QA.Float (rand_float r *. 10.0))
          attr_data)
      d.syms;
    let cols =
      ("Symbol", QV.syms d.syms)
      :: List.map2
           (fun name (_, arr) -> (name, QV.vector_of_atoms arr))
           extra_names extra_data
      @ List.mapi (fun i arr -> (wide_col i, QV.vector_of_atoms arr)) attr_data
    in
    QV.xkey [ "Symbol" ] (QV.table cols)
  in
  (* evaluation order matters: the shared RNG must be consumed in the same
     table order as load_pg (OCaml evaluates list elements right-to-left,
     so sequence explicitly) *)
  let secmaster = wide [ ("Sector", `Sym); ("Lot", `Long) ] in
  let risk = wide [ ("Beta", `Float); ("Var99", `Float) ] in
  let limits = wide [ ("MaxNotional", `Float); ("MaxQty", `Long) ] in
  [
    ("trades", QV.Table trades);
    ("quotes", QV.Table quotes);
    ("secmaster_w", secmaster);
    ("risk_w", risk);
    ("limits_w", limits);
  ]
