(** XTRA — the eXTended Relational Algebra (paper Section 3.2).

    XTRA is Hyper-Q's internal query representation: general enough to
    capture Q's ordered-list semantics, extensible enough to make SQL
    generation "a systematic and principled operation". Binding produces
    XTRA trees, the Xformer rewrites them, and the serializer turns them
    into {!Sqlast.Ast} statements.

    Notable departures from vanilla relational algebra, straight from the
    paper:
    - every relational operator declares an implicit *order column* and an
      *order-preservation* property (Section 3.3, Transparency);
    - scalar equality comes in a Q-flavoured 2VL form ([Eq2]) that a
      correctness transformation must rewrite into [IS NOT DISTINCT FROM]
      before serialization (Section 3.3, Correctness);
    - an as-of join operator captures Q's [aj] directly; serialization
      lowers it to a left outer join + window function (Section 3.2.2). *)

module Ty = Catalog.Sqltype

type colref = { cr_name : string; cr_type : Ty.t }

(* ------------------------------------------------------------------ *)
(* Scalar expressions                                                  *)
(* ------------------------------------------------------------------ *)

type scalar =
  | Const of Sqlast.Ast.lit * Ty.t
  | ColRef of string
  | Eq2 of scalar * scalar
      (** Q two-valued equality: nulls compare equal. MUST be rewritten by
          the 2VL transformation before serialization. *)
  | Neq2 of scalar * scalar
  | NullSafeEq of scalar * scalar  (** serializes as IS NOT DISTINCT FROM *)
  | NullSafeNeq of scalar * scalar
  | Cmp of [ `Lt | `Le | `Gt | `Ge ] * scalar * scalar
  | Arith of [ `Add | `Sub | `Mul | `Div | `Mod ] * scalar * scalar
  | Logic of [ `And | `Or ] * scalar * scalar
  | Not of scalar
  | IsNull of scalar
  | InList of scalar * (Sqlast.Ast.lit * Ty.t) list
  | Within of scalar * scalar * scalar
  | LikePat of scalar * string
  | Case of (scalar * scalar) list * scalar option
  | Cast of scalar * Ty.t
  | ScalarFun of string * scalar list
  | AggFun of { fn : string; distinct : bool; args : scalar list }
  | WinFun of {
      fn : string;
      args : scalar list;
      partition : scalar list;
      order : (scalar * [ `Asc | `Desc ]) list;
      frame : Sqlast.Ast.frame option;
    }

(* ------------------------------------------------------------------ *)
(* Relational operators                                                *)
(* ------------------------------------------------------------------ *)

type sort_key = { sk_expr : scalar; sk_dir : [ `Asc | `Desc ] }

type rel =
  | Get of {
      table : string;
      cols : colref list;
      ordcol : string option;  (** the implicit Q order column, if mapped *)
    }
  | ConstRel of { cols : colref list; rows : Sqlast.Ast.lit list list }
  | Project of { input : rel; exprs : (string * scalar) list }
  | Filter of { input : rel; pred : scalar }
  | Join of {
      kind : [ `Inner | `Left | `Cross ];
      left : rel;
      right : rel;
      eq_cols : string list;
          (** equi-join on same-named columns of both sides (null-safe,
              per Q's 2VL key matching) *)
      extra_pred : scalar option;
          (** additional predicate over the combined columns *)
    }
  | AsofJoin of {
      left : rel;
      right : rel;
      eq_cols : string list;
      ts_col : string;
      keep_right_time : bool;
    }
  | Aggregate of {
      input : rel;
      keys : (string * scalar) list;
      aggs : (string * scalar) list;  (** names to aggregate expressions *)
    }
  | WindowOp of { input : rel; wins : (string * scalar) list }
      (** extends the input with computed window columns *)
  | Sort of { input : rel; keys : sort_key list }
  | Limit of { input : rel; n : int }
  | Union of rel list
      (** UNION ALL concatenation; all inputs share the first input's
          column list (Q's [uj] after null-padding by the binder) *)

(* ------------------------------------------------------------------ *)
(* Derived properties (paper Section 3.2.2)                            *)
(* ------------------------------------------------------------------ *)

exception Bind_error of string

let bind_error fmt = Format.kasprintf (fun s -> raise (Bind_error s)) fmt

(** Derive the scalar type of an expression given input columns. *)
let rec scalar_type (cols : colref list) (s : scalar) : Ty.t =
  let col name =
    match List.find_opt (fun c -> c.cr_name = name) cols with
    | Some c -> c.cr_type
    | None -> bind_error "unknown column %s in scalar expression" name
  in
  match s with
  | Const (_, ty) -> ty
  | ColRef name -> col name
  | Eq2 _ | Neq2 _ | NullSafeEq _ | NullSafeNeq _ | Cmp _ | Logic _ | Not _
  | IsNull _ | InList _ | Within _ | LikePat _ ->
      Ty.TBool
  | Arith (`Div, _, _) -> Ty.TDouble
  | Arith (_, a, b) -> (
      match (scalar_type cols a, scalar_type cols b) with
      | Ty.TDouble, _ | _, Ty.TDouble -> Ty.TDouble
      | Ty.TDate, Ty.TDate -> Ty.TBigint
      | Ty.TDate, _ | _, Ty.TDate -> Ty.TDate
      | Ty.TTime, Ty.TTime -> Ty.TBigint
      | Ty.TTime, _ | _, Ty.TTime -> Ty.TTime
      | Ty.TTimestamp, Ty.TTimestamp -> Ty.TBigint
      | Ty.TTimestamp, _ | _, Ty.TTimestamp -> Ty.TTimestamp
      | _ -> Ty.TBigint)
  | Case ((_, r) :: _, _) -> scalar_type cols r
  | Case ([], Some e) -> scalar_type cols e
  | Case ([], None) -> Ty.TText
  | Cast (_, ty) -> ty
  | ScalarFun (("upper" | "lower" | "concat"), _) -> Ty.TText
  | ScalarFun (("length" | "sign"), _) -> Ty.TBigint
  | ScalarFun (("sqrt" | "exp" | "ln" | "log" | "power"), _) -> Ty.TDouble
  | ScalarFun ("coalesce", a :: _) -> scalar_type cols a
  | ScalarFun (_, a :: _) -> scalar_type cols a
  | ScalarFun (_, []) -> Ty.TText
  | AggFun { fn = "count"; _ } -> Ty.TBigint
  | AggFun { fn = "avg" | "stddev" | "stddev_pop" | "variance" | "var_pop" | "median"; _ } -> Ty.TDouble
  | AggFun { args = a :: _; _ } -> scalar_type cols a
  | AggFun { args = []; _ } -> Ty.TBigint
  | WinFun { fn = "row_number" | "rank" | "dense_rank" | "ntile"; _ } ->
      Ty.TBigint
  | WinFun { fn = "avg"; _ } -> Ty.TDouble
  | WinFun { fn = "count"; _ } -> Ty.TBigint
  | WinFun { args = a :: _; _ } -> scalar_type cols a
  | WinFun { args = []; _ } -> Ty.TBigint

(** Output columns of a relational expression, in order. *)
let rec output_cols (r : rel) : colref list =
  match r with
  | Get { cols; _ } -> cols
  | ConstRel { cols; _ } -> cols
  | Project { input; exprs } ->
      let in_cols = output_cols input in
      List.map
        (fun (name, s) -> { cr_name = name; cr_type = scalar_type in_cols s })
        exprs
  | Filter { input; _ } -> output_cols input
  | Join { left; right; eq_cols; _ } ->
      let lcols = output_cols left in
      let lnames = List.map (fun c -> c.cr_name) lcols in
      lcols
      @ (output_cols right
        |> List.filter (fun c ->
               (not (List.mem c.cr_name eq_cols))
               && not (List.mem c.cr_name lnames)))
  | AsofJoin { left; right; eq_cols; ts_col; keep_right_time } ->
      let lcols = output_cols left in
      let lnames = List.map (fun c -> c.cr_name) lcols in
      let extra =
        output_cols right
        |> List.filter (fun c ->
               (not (List.mem c.cr_name eq_cols))
               && ((not (c.cr_name = ts_col)) || keep_right_time)
               && not (List.mem c.cr_name lnames))
      in
      lcols @ extra
  | Aggregate { input; keys; aggs } ->
      let in_cols = output_cols input in
      List.map
        (fun (name, s) -> { cr_name = name; cr_type = scalar_type in_cols s })
        (keys @ aggs)
  | WindowOp { input; wins } ->
      let in_cols = output_cols input in
      in_cols
      @ List.map
          (fun (name, s) ->
            { cr_name = name; cr_type = scalar_type in_cols s })
          wins
  | Sort { input; _ } -> output_cols input
  | Limit { input; _ } -> output_cols input
  | Union rels -> ( match rels with r :: _ -> output_cols r | [] -> [])

(** The implicit order column flowing through the operator, if any
    (Section 3.3: each XTRA operator can declare an implicit order
    column). *)
let rec order_col (r : rel) : string option =
  match r with
  | Get { ordcol; _ } -> ordcol
  | ConstRel _ -> None
  | Project { input; exprs } -> (
      match order_col input with
      | Some oc when List.exists (fun (n, s) -> n = oc && s = ColRef oc) exprs
        ->
          Some oc
      | _ -> None)
  | Filter { input; _ } -> order_col input
  | Join { left; _ } -> order_col left
  | AsofJoin { left; _ } -> order_col left
  | Aggregate _ -> None
  | WindowOp { input; _ } -> order_col input
  | Sort { input; _ } -> order_col input
  | Limit { input; _ } -> order_col input
  | Union _ -> None

(** Order preservation: does this operator keep its input's row order in
    the backend? In a set-oriented backend only operators that impose an
    explicit order do. Used by the Xformer to decide where ORDER BY
    injection is required. *)
let preserves_order = function
  | Get _ | ConstRel _ -> false (* backend scans have no defined order *)
  | Project _ | Filter _ | WindowOp _ | Limit _ -> true
  | Join _ | AsofJoin _ | Aggregate _ | Union _ -> false
  | Sort _ -> true

(** Does the relation produce at most one row (scalar aggregate)? Used by
    the order-elision transformation. *)
let rec is_scalar (r : rel) : bool =
  match r with
  | Aggregate { keys = []; _ } -> true
  | Project { input; _ } | Filter { input; _ } | Sort { input; _ } ->
      is_scalar input
  | Limit { n = 1; _ } -> true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Scalar traversal helpers (used by transformations)                  *)
(* ------------------------------------------------------------------ *)

(** Bottom-up scalar rewrite. *)
let rec map_scalar (f : scalar -> scalar) (s : scalar) : scalar =
  let r = map_scalar f in
  let s' =
    match s with
    | Const _ | ColRef _ -> s
    | Eq2 (a, b) -> Eq2 (r a, r b)
    | Neq2 (a, b) -> Neq2 (r a, r b)
    | NullSafeEq (a, b) -> NullSafeEq (r a, r b)
    | NullSafeNeq (a, b) -> NullSafeNeq (r a, r b)
    | Cmp (op, a, b) -> Cmp (op, r a, r b)
    | Arith (op, a, b) -> Arith (op, r a, r b)
    | Logic (op, a, b) -> Logic (op, r a, r b)
    | Not a -> Not (r a)
    | IsNull a -> IsNull (r a)
    | InList (a, ls) -> InList (r a, ls)
    | Within (a, lo, hi) -> Within (r a, r lo, r hi)
    | LikePat (a, p) -> LikePat (r a, p)
    | Case (bs, e) ->
        Case (List.map (fun (c, v) -> (r c, r v)) bs, Option.map r e)
    | Cast (a, ty) -> Cast (r a, ty)
    | ScalarFun (fn, args) -> ScalarFun (fn, List.map r args)
    | AggFun a -> AggFun { a with args = List.map r a.args }
    | WinFun w ->
        WinFun
          {
            w with
            args = List.map r w.args;
            partition = List.map r w.partition;
            order = List.map (fun (e, d) -> (r e, d)) w.order;
          }
  in
  f s'

(** Column names referenced by a scalar. *)
let rec scalar_cols (s : scalar) : string list =
  match s with
  | ColRef c -> [ c ]
  | Const _ -> []
  | Eq2 (a, b) | Neq2 (a, b) | NullSafeEq (a, b) | NullSafeNeq (a, b)
  | Cmp (_, a, b) | Arith (_, a, b) | Logic (_, a, b) ->
      scalar_cols a @ scalar_cols b
  | Not a | IsNull a | Cast (a, _) | LikePat (a, _) -> scalar_cols a
  | InList (a, _) -> scalar_cols a
  | Within (a, lo, hi) -> scalar_cols a @ scalar_cols lo @ scalar_cols hi
  | Case (bs, e) ->
      List.concat_map (fun (c, v) -> scalar_cols c @ scalar_cols v) bs
      @ (match e with Some e -> scalar_cols e | None -> [])
  | ScalarFun (_, args) -> List.concat_map scalar_cols args
  | AggFun { args; _ } -> List.concat_map scalar_cols args
  | WinFun { args; partition; order; _ } ->
      List.concat_map scalar_cols args
      @ List.concat_map scalar_cols partition
      @ List.concat_map (fun (e, _) -> scalar_cols e) order

let rec contains_eq2 (s : scalar) : bool =
  let found = ref false in
  ignore
    (map_scalar
       (fun s' ->
         (match s' with Eq2 _ | Neq2 _ -> found := true | _ -> ());
         s')
       s);
  !found

and rel_map_scalars (f : scalar -> scalar) (r : rel) : rel =
  let rm = rel_map_scalars f in
  match r with
  | Get _ | ConstRel _ -> r
  | Project { input; exprs } ->
      Project
        { input = rm input; exprs = List.map (fun (n, s) -> (n, f s)) exprs }
  | Filter { input; pred } -> Filter { input = rm input; pred = f pred }
  | Join j ->
      Join
        {
          j with
          left = rm j.left;
          right = rm j.right;
          extra_pred = Option.map f j.extra_pred;
        }
  | AsofJoin a -> AsofJoin { a with left = rm a.left; right = rm a.right }
  | Aggregate { input; keys; aggs } ->
      Aggregate
        {
          input = rm input;
          keys = List.map (fun (n, s) -> (n, f s)) keys;
          aggs = List.map (fun (n, s) -> (n, f s)) aggs;
        }
  | WindowOp { input; wins } ->
      WindowOp
        { input = rm input; wins = List.map (fun (n, s) -> (n, f s)) wins }
  | Sort { input; keys } ->
      Sort
        {
          input = rm input;
          keys = List.map (fun k -> { k with sk_expr = f k.sk_expr }) keys;
        }
  | Limit { input; n } -> Limit { input = rm input; n }
  | Union rels -> Union (List.map rm rels)

(* ------------------------------------------------------------------ *)
(* Debug printing                                                      *)
(* ------------------------------------------------------------------ *)

let rec rel_to_string ?(indent = 0) (r : rel) : string =
  let pad = String.make indent ' ' in
  let child c = rel_to_string ~indent:(indent + 2) c in
  match r with
  | Get { table; cols; _ } ->
      Printf.sprintf "%sxtra_get(%s) [%d cols]" pad table (List.length cols)
  | ConstRel { rows; _ } ->
      Printf.sprintf "%sxtra_const_rel [%d rows]" pad (List.length rows)
  | Project { input; exprs } ->
      Printf.sprintf "%sxtra_project(%s)\n%s" pad
        (String.concat ", " (List.map fst exprs))
        (child input)
  | Filter { input; _ } -> Printf.sprintf "%sxtra_select\n%s" pad (child input)
  | Join { kind; left; right; _ } ->
      Printf.sprintf "%sxtra_join(%s)\n%s\n%s" pad
        (match kind with `Inner -> "inner" | `Left -> "left" | `Cross -> "cross")
        (child left) (child right)
  | AsofJoin { left; right; eq_cols; ts_col; _ } ->
      Printf.sprintf "%sxtra_asof_join(%s; %s)\n%s\n%s" pad
        (String.concat "," eq_cols) ts_col (child left) (child right)
  | Aggregate { input; keys; aggs } ->
      Printf.sprintf "%sxtra_agg(by: %s; aggs: %s)\n%s" pad
        (String.concat "," (List.map fst keys))
        (String.concat "," (List.map fst aggs))
        (child input)
  | WindowOp { input; wins } ->
      Printf.sprintf "%sxtra_window(%s)\n%s" pad
        (String.concat "," (List.map fst wins))
        (child input)
  | Sort { input; keys } ->
      Printf.sprintf "%sxtra_sort(%d keys)\n%s" pad (List.length keys)
        (child input)
  | Limit { input; n } -> Printf.sprintf "%sxtra_limit(%d)\n%s" pad n (child input)
  | Union rels ->
      Printf.sprintf "%sxtra_union_all [%d inputs]\n%s" pad (List.length rels)
        (String.concat "\n" (List.map child rels))
