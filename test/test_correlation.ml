(* Correlated tracing tests: one trace id visible end-to-end — in the
   exported trace ring (/traces.json, .hq.traces), in structured log
   lines, in the flight recorder's capture, and inside the traceparent
   comment the Gateway appends to every dispatched SQL statement — plus
   the live .hq.activity session plane, observed mid-query. *)

module M = Obs.Metrics
module R = Obs.Recorder
module H = Obs.Http
module Tr = Obs.Trace
module QV = Qvalue.Value
module QA = Qvalue.Atom
module V = Pgdb.Value
module Db = Pgdb.Db
module S = Catalog.Schema
module Ty = Catalog.Sqltype
module P = Platform.Hyperq_platform

let check = Alcotest.check
let tint = Alcotest.int
let tbool = Alcotest.bool
let tstr = Alcotest.string

let contains hay needle =
  let re = Str.regexp_string needle in
  try
    ignore (Str.search_forward re hay 0);
    true
  with Not_found -> false

let make_db () =
  let db = Db.create () in
  Db.load_table db
    (S.table ~order_col:"hq_ord" "trades"
       [
         S.column "hq_ord" Ty.TBigint;
         S.column "Symbol" Ty.TVarchar;
         S.column "Price" Ty.TDouble;
         S.column "Size" Ty.TBigint;
       ])
    (List.mapi
       (fun i (sym, px, sz) ->
         [| V.Int (Int64.of_int i); V.Str sym; V.Float px; V.Int (Int64.of_int sz) |])
       [ ("A", 10.0, 100); ("B", 20.0, 200); ("A", 11.0, 150) ]);
  db

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "query failed: %s" e

let is_hex s =
  String.for_all (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false) s

let backend_of (c : P.Client.client) : Hyperq.Backend.t =
  (Hyperq.Engine.mdi (Platform.Xc.engine c.P.Client.conn.P.xc))
    .Hyperq.Mdi.backend

let column_syms tb name =
  let col = QV.column_exn tb name in
  Array.init (QV.length col) (fun i ->
      match QV.index col i with
      | QV.Atom (QA.Sym s) -> s
      | v -> Alcotest.failf "expected sym, got %s" (Qvalue.Qprint.to_string v))

(* ------------------------------------------------------------------ *)
(* One trace id, four surfaces                                         *)
(* ------------------------------------------------------------------ *)

let test_one_trace_id_everywhere () =
  let sink, read = Obs.Events.memory () in
  let recorder = R.create ~threshold_s:0.0 () in
  let db = make_db () in
  let obs = Obs.Ctx.create ~events:sink ~recorder () in
  let p = P.create ~obs db in
  let c = P.Client.connect p in
  ignore (ok (P.Client.query c "select Price from trades where Symbol=`A"));
  (* (c) the flight recorder's capture carries the trace id *)
  let trace_id =
    match R.recent recorder 1 with
    | [ r ] -> r.R.r_trace_id
    | _ -> Alcotest.fail "expected one recorder capture"
  in
  check tint "trace id is 32 hex chars" 32 (String.length trace_id);
  check tbool "trace id is lowercase hex" true (is_hex trace_id);
  (* (a) the export ring serves the same id over GET /traces.json *)
  let traces =
    H.handle (P.admin_handler p) "GET /traces.json HTTP/1.1\r\n\r\n"
  in
  check tbool "traces.json 200" true (contains traces "HTTP/1.1 200");
  check tbool "traces.json carries the trace id" true
    (contains traces (Printf.sprintf "\"traceID\":\"%s\"" trace_id));
  check tbool "traces.json has pipeline span names" true
    (contains traces "\"operationName\":\"execute\"");
  (* (b) a structured log line carries the same id *)
  let logs = List.filter (fun l -> contains l "\"level\"") (read ()) in
  check tbool "a log line carries the trace id" true
    (List.exists
       (fun l ->
         contains l "\"msg\":\"query completed\""
         && contains l (Printf.sprintf "\"trace_id\":\"%s\"" trace_id))
       logs);
  (* ...and /logs.json serves the retained tail with the same id *)
  let logs_http =
    H.handle (P.admin_handler p) "GET /logs.json HTTP/1.1\r\n\r\n"
  in
  check tbool "logs.json 200" true (contains logs_http "HTTP/1.1 200");
  check tbool "logs.json carries the trace id" true
    (contains logs_http trace_id);
  (* (d) the dispatched SQL carries the traceparent comment, in sql_log *)
  let backend = backend_of c in
  let decorated =
    match
      List.find_opt
        (fun sql -> contains sql "traceparent")
        !(backend.Hyperq.Backend.sql_log)
    with
    | Some sql -> sql
    | None -> Alcotest.fail "no dispatched SQL carries a traceparent comment"
  in
  let expected_prefix =
    Printf.sprintf "/* traceparent='00-%s-" trace_id
  in
  check tbool "sql_log comment names this trace" true
    (contains decorated expected_prefix);
  check tbool "comment is W3C-shaped" true (contains decorated "-01' */");
  (* the commented statement still executes identically on pgdb: the SQL
     lexer treats the trailing block comment as whitespace *)
  let sess = Db.open_session db in
  let plain =
    match String.index_opt decorated '/' with
    | Some i -> String.trim (String.sub decorated 0 (i - 1))
    | None -> Alcotest.fail "expected a comment in the decorated SQL"
  in
  let rows_of sql =
    match Db.exec sess sql with
    | Db.Rows (res, _) -> res.Pgdb.Exec.res_rows
    | Db.Complete _ -> Alcotest.failf "expected rows from %s" sql
  in
  check tbool "decorated and plain SQL agree" true
    (rows_of decorated = rows_of plain);
  (* per-level counters moved *)
  check tbool "info lines counted" true
    (Obs.Log.lines_logged obs.Obs.Ctx.log Obs.Log.Info > 0);
  P.Client.close c

(* ------------------------------------------------------------------ *)
(* .hq.activity: live session plane                                    *)
(* ------------------------------------------------------------------ *)

let test_activity_in_flight_and_disconnect () =
  let db = make_db () in
  (* observe the session registry mid-query: the Gateway logs a Debug
     "backend dispatch" line while the statement is in flight, so a
     writer hooked to the shared sink can snapshot .hq.activity at that
     exact moment *)
  let snapshot = ref None in
  let obs_ref = ref None in
  let sink =
    Obs.Events.create
      ~write:(fun line ->
        if contains line "backend dispatch" && !snapshot = None then
          match !obs_ref with
          | Some ctx -> (
              match Obs.Sessions.active ctx.Obs.Ctx.sessions with
              | s :: _ ->
                  snapshot :=
                    Some
                      ( s.Obs.Sessions.s_fingerprint,
                        s.Obs.Sessions.s_trace_id,
                        Obs.Sessions.elapsed_ns s )
              | [] -> ())
          | None -> ())
      ()
  in
  let obs = Obs.Ctx.create ~events:sink () in
  Obs.Log.set_level obs.Obs.Ctx.log Obs.Log.Debug;
  obs_ref := Some obs;
  let p = P.create ~obs db in
  let c = P.Client.connect p in
  check tint "one session registered" 1 (Obs.Sessions.size obs.Obs.Ctx.sessions);
  ignore (ok (P.Client.query c "select Price from trades where Symbol=`A"));
  (match !snapshot with
  | Some (fp, trace_id, elapsed) ->
      check tbool "in-flight fingerprint visible" true (fp <> "");
      check tint "in-flight trace id visible" 32 (String.length trace_id);
      check tbool "elapsed clock running" true (elapsed >= 0L)
  | None -> Alcotest.fail "no mid-query .hq.activity snapshot captured");
  (* after the query: back to idle, query counted, user recorded *)
  (match ok (P.Client.query c ".hq.activity") with
  | QV.Table tb ->
      check tint "one session row" 1 (QV.table_length tb);
      check tstr "authenticated user" "trader" (column_syms tb "user").(0);
      check tstr "idle after completion" "idle" (column_syms tb "state").(0);
      let queries = QV.column_exn tb "queries" in
      (match QV.index queries 0 with
      | QV.Atom (QA.Long n) ->
          check tbool "completed queries counted" true (Int64.to_int n >= 1)
      | _ -> Alcotest.fail "queries must be longs")
  | v -> Alcotest.failf "expected a table, got %s" (Qvalue.Qprint.to_string v));
  (* GET /activity.json serves the same registry *)
  let aj = H.handle (P.admin_handler p) "GET /activity.json HTTP/1.1\r\n\r\n" in
  check tbool "activity.json 200" true (contains aj "HTTP/1.1 200");
  check tbool "activity.json names the user" true
    (contains aj "\"user\":\"trader\"");
  (* disconnect removes the session *)
  P.Client.close c;
  check tint "session unregistered on disconnect" 0
    (Obs.Sessions.size obs.Obs.Ctx.sessions);
  let after = H.handle (P.admin_handler p) "GET /activity.json HTTP/1.1\r\n\r\n" in
  check tbool "activity.json empty after disconnect" true
    (contains after "\"sessions\":[]")

(* ------------------------------------------------------------------ *)
(* .hq.traces: in-band export ring                                     *)
(* ------------------------------------------------------------------ *)

let test_hq_traces_in_band () =
  let p = P.create (make_db ()) in
  let c = P.Client.connect p in
  for _ = 1 to 3 do
    ignore (ok (P.Client.query c "select Price from trades"))
  done;
  (match ok (P.Client.query c ".hq.traces[2]") with
  | QV.Table tb ->
      check tint "bracket arg bounds rows" 2 (QV.table_length tb);
      let ids = column_syms tb "trace_id" in
      Array.iter
        (fun id -> check tint "each row a full trace id" 32 (String.length id))
        ids;
      check tbool "distinct traces" true (ids.(0) <> ids.(1));
      let traces = column_syms tb "trace" in
      check tbool "flat spans embedded" true
        (contains traces.(0) "\"parentSpanID\":")
  | v -> Alcotest.failf "expected a table, got %s" (Qvalue.Qprint.to_string v));
  (* admin traffic does not open traces of its own *)
  (match ok (P.Client.query c ".hq.traces[]") with
  | QV.Table tb -> check tint "only real queries traced" 3 (QV.table_length tb)
  | _ -> Alcotest.fail "expected table");
  (* sized by the export ring: a shared registry counter moved *)
  let reg = (P.obs p).Obs.Ctx.registry in
  ignore reg;
  check tint "export ring holds them" 3
    (Obs.Export.size (P.obs p).Obs.Ctx.export);
  P.Client.close c

(* ------------------------------------------------------------------ *)
(* Cross-shard trace propagation                                       *)
(* ------------------------------------------------------------------ *)

let rec collect_named name (sp : Tr.span) acc =
  let acc = if Tr.name sp = name then sp :: acc else acc in
  List.fold_left (fun a c -> collect_named name c a) acc (Tr.children sp)

let shard_attr (sp : Tr.span) : int =
  match List.assoc_opt "shard" (Tr.attrs sp) with
  | Some (Tr.Int i) -> i
  | _ -> Alcotest.fail "shard_exec span must carry a shard attribute"

let test_cross_shard_trace () =
  let shards = 4 in
  let sink, read = Obs.Events.memory () in
  let obs = Obs.Ctx.create ~events:sink () in
  Obs.Log.set_level obs.Obs.Ctx.log Obs.Log.Debug;
  let p = P.create ~obs ~shards (make_db ()) in
  let c = P.Client.connect p in
  (* a grouped aggregate is shard-safe and scatters to every shard *)
  ignore (ok (P.Client.query c "select mx:max Price by Symbol from trades"));
  let exported =
    match Obs.Export.recent obs.Obs.Ctx.export 1 with
    | [ e ] -> e
    | es -> Alcotest.failf "expected one exported trace, got %d" (List.length es)
  in
  let trace_id = exported.Obs.Export.x_trace_id in
  let root = exported.Obs.Export.x_root in
  (* (a) the coordinator's span tree holds one shard_exec child per
     shard, under the execute stage, each tagged with its shard index *)
  let shard_spans = collect_named "shard_exec" root [] in
  check tint "one shard_exec span per shard" shards (List.length shard_spans);
  let by_shard =
    List.sort compare (List.map (fun sp -> (shard_attr sp, Tr.span_id sp)) shard_spans)
  in
  check tbool "every shard index appears once" true
    (List.map fst by_shard = List.init shards Fun.id);
  List.iter
    (fun sp ->
      check tbool "worker closed the span" true (Tr.duration_ns sp >= 0L);
      check tint "span id is 16 hex chars" 16 (String.length (Tr.span_id sp));
      check tbool "span id is hex" true (is_hex (Tr.span_id sp)))
    shard_spans;
  (* gather/merge got its own span under the same trace *)
  check tbool "gather span recorded" true (collect_named "gather" root [] <> []);
  (* (b) each shard's dispatched SQL carries a traceparent naming the
     trace AND that shard's own child span id *)
  let backends =
    match P.cluster p with
    | Some cl -> Shard.Cluster.backends cl
    | None -> Alcotest.fail "platform must be sharded"
  in
  List.iter
    (fun (shard, span_id) ->
      let expected =
        Printf.sprintf "/* traceparent='00-%s-%s-01' */" trace_id span_id
      in
      let log = !(backends.(shard).Hyperq.Backend.sql_log) in
      check tbool
        (Printf.sprintf "shard %d sql_log names its own shard_exec span" shard)
        true
        (List.exists (fun sql -> contains sql expected) log))
    by_shard;
  (* (c) shard-side structured logs correlate on the same trace id: the
     gateway's Debug dispatch line is emitted on the worker domain
     through the attached per-shard trace handle *)
  let dispatch_logs =
    List.filter (fun l -> contains l "backend dispatch") (read ())
  in
  check tbool "shard dispatch logs carry the coordinator's trace id" true
    (List.exists
       (fun l -> contains l (Printf.sprintf "\"trace_id\":\"%s\"" trace_id))
       dispatch_logs);
  (* (d) /traces.json renders the full coordinator -> shard tree *)
  let tj = H.handle (P.admin_handler p) "GET /traces.json HTTP/1.1\r\n\r\n" in
  check tbool "traces.json 200" true (contains tj "HTTP/1.1 200");
  check tbool "traces.json names the trace" true
    (contains tj (Printf.sprintf "\"traceID\":\"%s\"" trace_id));
  check tbool "traces.json has the shard spans" true
    (contains tj "\"operationName\":\"shard_exec\"");
  List.iter
    (fun (_, span_id) ->
      check tbool "traces.json lists each shard span id" true
        (contains tj (Printf.sprintf "\"spanID\":\"%s\"" span_id)))
    by_shard;
  (* (e) .hq.traces serves the same tree in band *)
  (match ok (P.Client.query c ".hq.traces[1]") with
  | QV.Table tb ->
      let traces = column_syms tb "trace" in
      check tbool ".hq.traces embeds shard_exec spans" true
        (contains traces.(0) "shard_exec")
  | v -> Alcotest.failf "expected a table, got %s" (Qvalue.Qprint.to_string v));
  P.Client.close c;
  P.shutdown p

(* ------------------------------------------------------------------ *)
(* Backend latency histogram                                           *)
(* ------------------------------------------------------------------ *)

let test_backend_exec_histogram () =
  let p = P.create (make_db ()) in
  let c = P.Client.connect p in
  ignore (ok (P.Client.query c "select Price from trades"));
  let reg = (P.obs p).Obs.Ctx.registry in
  let h = M.histogram reg "hq_backend_exec_seconds" in
  check tbool "backend round trips observed" true (M.hist_count h >= 1);
  check tbool "latency sum positive" true (M.hist_sum h > 0.0);
  let text = P.stats_text p in
  check tbool "histogram in the exposition" true
    (contains text "hq_backend_exec_seconds_bucket");
  P.Client.close c

let () =
  Alcotest.run "correlation"
    [
      ( "trace-id",
        [
          Alcotest.test_case "one id across all four surfaces" `Quick
            test_one_trace_id_everywhere;
        ] );
      ( "activity",
        [
          Alcotest.test_case "in-flight view and disconnect" `Quick
            test_activity_in_flight_and_disconnect;
        ] );
      ( "traces",
        [
          Alcotest.test_case ".hq.traces in band" `Quick test_hq_traces_in_band;
        ] );
      ( "cross-shard",
        [
          Alcotest.test_case "scatter/gather under one trace" `Quick
            test_cross_shard_trace;
        ] );
      ( "gateway",
        [
          Alcotest.test_case "backend exec histogram" `Quick
            test_backend_exec_histogram;
        ] );
    ]
