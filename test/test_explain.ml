(* EXPLAIN/ANALYZE plane tests: operator trees out of the instrumented
   pgdb executor (shapes, row counts, estimates), the .hq.explain admin
   query over the full 25-query analytical workload on a 2-shard
   platform (single-shard and scatter/gather routes included), the
   /explain.json admin endpoint, tree-shape stability across plan-cache
   hits, tail sampling, and the cardinality feedback that analyzed runs
   fold into the per-fingerprint store. *)

module Db = Pgdb.Db
module Op = Pgdb.Opstats
module QV = Qvalue.Value
module P = Platform.Hyperq_platform
module MD = Workload.Marketdata
module AW = Workload.Analytical
module H = Obs.Http

let check = Alcotest.check
let tint = Alcotest.int
let tbool = Alcotest.bool
let tstr = Alcotest.string

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "query failed: %s" e

let marketdata_db () =
  let db = Db.create () in
  MD.load_pg db (MD.generate MD.small_scale);
  db

let with_platform ?shards ?analyze_sample db f =
  let p = P.create ?shards ?analyze_sample db in
  Fun.protect ~finally:(fun () -> P.shutdown p) (fun () -> f p)

(* ------------------------------------------------------------------ *)
(* Executor instrumentation (pgdb layer, no platform)                  *)
(* ------------------------------------------------------------------ *)

let analyzed_plan sess sql : Op.node =
  (match Db.exec sess sql with
  | Db.Rows _ -> ()
  | _ -> Alcotest.failf "expected rows from %s" sql);
  match Db.last_plan sess with
  | Some n -> n
  | None -> Alcotest.failf "no plan collected for %s" sql

let ops_of (n : Op.node) : string list =
  List.map (fun (_, m) -> m.Op.op) (Op.flatten n)

let test_exec_tree_shape () =
  let db = marketdata_db () in
  let sess = Db.open_session db in
  (* this test pins the ROW interpreter's operator chain; the vectorized
     executor's nodes are covered in test_vexec *)
  Db.set_vectorized sess false;
  Db.set_analyze sess true;
  let n =
    analyzed_plan sess
      "SELECT \"Price\" FROM trades WHERE \"Price\" > 10.0 ORDER BY \
       \"Price\" DESC LIMIT 5"
  in
  check
    Alcotest.(list string)
    "operator chain" [ "limit"; "sort"; "project"; "filter"; "scan" ]
    (ops_of n);
  (* sane actuals: the scan reads the whole table, the limit caps at 5 *)
  let by op = List.find (fun (_, m) -> m.Op.op = op) (Op.flatten n) in
  let _, scan = by "scan" in
  check tstr "scan names the table" "trades" scan.Op.detail;
  check tbool "scan read rows" true (scan.Op.rows_out > 0);
  let _, limit = by "limit" in
  check tbool "limit caps output" true (limit.Op.rows_out <= 5);
  (* every node carries a positive estimate and non-negative self time *)
  List.iter
    (fun (_, m) ->
      check tbool (m.Op.op ^ " est positive") true (m.Op.est_rows >= 1);
      check tbool (m.Op.op ^ " self_ns >= 0") true (m.Op.self_ns >= 0L))
    (Op.flatten n)

let test_exec_aggregate_and_join () =
  let db = marketdata_db () in
  let sess = Db.open_session db in
  Db.set_vectorized sess false;
  Db.set_analyze sess true;
  let agg =
    analyzed_plan sess
      "SELECT \"Symbol\", SUM(\"Size\") FROM trades GROUP BY \"Symbol\""
  in
  check tbool "aggregate at the root" true
    (List.mem "aggregate" (ops_of agg));
  let join =
    analyzed_plan sess
      "SELECT t.\"Price\", s.\"Sector\" FROM trades t JOIN secmaster_w s \
       ON t.\"Symbol\" = s.\"Symbol\""
  in
  let _, j =
    List.find
      (fun (_, m) -> m.Op.op = "hash_join" || m.Op.op = "nested_loop")
      (Op.flatten join)
  in
  check tint "join has two children" 2 (List.length j.Op.children);
  check tstr "equi join hashes" "hash_join" j.Op.op;
  (* join input accounting: rows_in is the sum of both children *)
  check tint "join rows_in"
    (List.fold_left (fun a c -> a + c.Op.rows_out) 0 j.Op.children)
    j.Op.rows_in

(* the vectorized join: its operator node must carry the same accounting
   contract as the row path's hash_join — build/probe sizes in the
   detail, est vs actual cardinalities, and a computable q-error *)
let test_vector_hash_join_node () =
  let db = marketdata_db () in
  let sess = Db.open_session db in
  Db.set_vectorized sess true;
  Db.set_analyze sess true;
  let plan =
    analyzed_plan sess
      "SELECT t.\"Price\", s.\"Sector\" FROM trades t JOIN secmaster_w s \
       ON t.\"Symbol\" = s.\"Symbol\""
  in
  let _, j =
    try List.find (fun (_, m) -> m.Op.op = "vector_hash_join") (Op.flatten plan)
    with Not_found ->
      Alcotest.failf "no vector_hash_join node; ops: %s"
        (String.concat "," (ops_of plan))
  in
  (* detail: "<kind> build=<rows> probe=<rows>" *)
  (match String.split_on_char ' ' j.Op.detail with
  | [ kind; b; p ] ->
      check tstr "inner join kind" "inner" kind;
      let num s pfx =
        check tbool (pfx ^ " prefixed") true
          (String.length s > String.length pfx
          && String.sub s 0 (String.length pfx) = pfx);
        int_of_string
          (String.sub s (String.length pfx)
             (String.length s - String.length pfx))
      in
      let build = num b "build=" and probe = num p "probe=" in
      check tbool "build side read" true (build > 0);
      check tbool "probe side read" true (probe > 0);
      check tint "rows_in is build+probe" (build + probe) j.Op.rows_in
  | _ -> Alcotest.failf "unexpected join detail %S" j.Op.detail);
  check tint "join has two children" 2 (List.length j.Op.children);
  check tbool "actual cardinality recorded" true (j.Op.rows_out > 0);
  check tbool "estimate present" true (j.Op.est_rows >= 1);
  (* est vs actual feed the q-error summary *)
  let q = Op.qerror ~est:j.Op.est_rows ~actual:j.Op.rows_out in
  check tbool "q-error computable" true (q >= 1.0 && Float.is_finite q);
  (* a left join renders its kind *)
  let lplan =
    analyzed_plan sess
      "SELECT t.\"Price\", s.\"Sector\" FROM trades t LEFT JOIN secmaster_w \
       s ON t.\"Symbol\" = s.\"Symbol\""
  in
  let _, lj =
    List.find (fun (_, m) -> m.Op.op = "vector_hash_join") (Op.flatten lplan)
  in
  check tbool "left join detail" true
    (String.length lj.Op.detail >= 5 && String.sub lj.Op.detail 0 5 = "left ")

let test_exec_off_collects_nothing () =
  let db = marketdata_db () in
  let sess = Db.open_session db in
  (match Db.exec sess "SELECT \"Price\" FROM trades" with
  | Db.Rows _ -> ()
  | _ -> Alcotest.fail "expected rows");
  check tbool "no plan without analyze" true (Db.last_plan sess = None);
  Db.set_analyze sess true;
  ignore (analyzed_plan sess "SELECT \"Price\" FROM trades");
  Db.set_analyze sess false;
  check tbool "turning analyze off clears the plan" true
    (Db.last_plan sess = None)

let test_qerror_accounting () =
  check (Alcotest.float 1e-9) "perfect estimate" 1.0
    (Op.qerror ~est:100 ~actual:100);
  check (Alcotest.float 1e-9) "underestimate" 4.0
    (Op.qerror ~est:25 ~actual:100);
  check (Alcotest.float 1e-9) "empty actuals clamp" 25.0
    (Op.qerror ~est:25 ~actual:0)

(* ------------------------------------------------------------------ *)
(* .hq.explain over the analytical workload, sharded                   *)
(* ------------------------------------------------------------------ *)

let column_syms t name =
  match QV.column_exn t name with
  | QV.Vector (_, a) ->
      Array.to_list a
      |> List.map (function Qvalue.Atom.Sym s -> s | _ -> "?")
  | _ -> []

let test_workload_explains_sharded () =
  let d = MD.generate MD.small_scale in
  let db = Db.create () in
  MD.load_pg db d;
  with_platform ~shards:2 db (fun p ->
      let c = P.Client.connect p in
      let ex = (P.obs p).Obs.Ctx.explain in
      List.iter
        (fun (q : AW.query) ->
          List.iter (fun s -> ignore (ok (P.Client.query c s))) q.AW.setup;
          match ok (P.Client.query c (".hq.explain " ^ q.AW.text)) with
          | QV.Table t ->
              let rows = QV.table_length t in
              if rows = 0 then
                Alcotest.failf "Q%d: empty operator table" q.AW.id;
              (* every analyzed query lands in the explain ring with its
                 actual row counts *)
              (match Obs.Explain.recent ex 1 with
              | [ pl ] ->
                  check tbool
                    (Printf.sprintf "Q%d: rows scanned" q.AW.id)
                    true
                    (pl.Obs.Explain.p_rows_scanned > 0)
              | _ -> Alcotest.failf "Q%d: no ring entry" q.AW.id);
              check tbool
                (Printf.sprintf "Q%d: ops named" q.AW.id)
                true
                (List.for_all (fun s -> s <> "") (column_syms t "op"))
          | v ->
              Alcotest.failf "Q%d: expected operator table, got %s" q.AW.id
                (Qvalue.Qprint.to_string v))
        (AW.queries d);
      check tint "all 25 queries analyzed" 25 (Obs.Explain.analyzed_total ex);
      P.Client.close c)

let test_route_explanations () =
  let d = MD.generate MD.small_scale in
  let db = Db.create () in
  MD.load_pg db d;
  with_platform ~shards:2 db (fun p ->
      let c = P.Client.connect p in
      let ex = (P.obs p).Obs.Ctx.explain in
      let s0 = d.MD.syms.(0) in
      (* distribution-key equality pins the query to one shard *)
      (match
         ok
           (P.Client.query c
              (Printf.sprintf ".hq.explain select from trades where \
                               Symbol=`%s" s0))
       with
      | QV.Table t ->
          check tbool "single route: shard operators attached" true
            (QV.table_length t > 0)
      | v -> Alcotest.failf "expected table, got %s" (Qvalue.Qprint.to_string v));
      (match Obs.Explain.recent ex 1 with
      | [ pl ] ->
          check tstr "single route class" "single" pl.Obs.Explain.p_route;
          check tint "single route: one shard plan" 1
            pl.Obs.Explain.p_shards
      | _ -> Alcotest.fail "no ring entry");
      (* a grouped aggregate scatters with partial-aggregate decomposition *)
      ignore
        (ok (P.Client.query c ".hq.explain select mx:max Price by Symbol \
                               from trades"));
      (match Obs.Explain.recent ex 1 with
      | [ pl ] ->
          check tstr "scatter route class" "partial_agg"
            pl.Obs.Explain.p_route;
          check tint "scatter: both shard plans" 2 pl.Obs.Explain.p_shards;
          (* the decomposition itself is in the rendered document *)
          let has s =
            Str.string_match
              (Str.regexp (".*" ^ Str.quote s))
              pl.Obs.Explain.p_tree 0
          in
          check tbool "combine functions listed" true
            (has "\"combines\"" && has "\"max\"")
      | _ -> Alcotest.fail "no ring entry");
      P.Client.close c)

(* .hq.explain works unsharded too: the tree is coordinator-side *)
let test_explain_unsharded () =
  with_platform (marketdata_db ()) (fun p ->
      let c = P.Client.connect p in
      (match
         ok (P.Client.query c ".hq.explain q\"select s:sum Size by Symbol \
                               from trades\"")
       with
      | QV.Table t ->
          let shards =
            match QV.column_exn t "shard" with
            | QV.Vector (_, a) ->
                Array.to_list a
                |> List.map (function Qvalue.Atom.Long i -> Int64.to_int i | _ -> 0)
            | _ -> []
          in
          check tbool "coordinator rows marked -1" true
            (shards <> [] && List.for_all (fun s -> s = -1) shards)
      | v -> Alcotest.failf "expected table, got %s" (Qvalue.Qprint.to_string v));
      (match Obs.Explain.recent (P.obs p).Obs.Ctx.explain 1 with
      | [ pl ] ->
          check tstr "unsharded route class" "coordinator"
            pl.Obs.Explain.p_route;
          check tbool "rows out recorded" true (pl.Obs.Explain.p_rows_out > 0)
      | _ -> Alcotest.fail "no ring entry");
      (* a broken query comes back as an atom, not a crash *)
      (match ok (P.Client.query c ".hq.explain select nope from missing") with
      | QV.Atom (Qvalue.Atom.Sym s) ->
          check tbool "error surfaces" true
            (String.length s > 0 && String.sub s 0 7 = "explain")
      | v -> Alcotest.failf "expected atom, got %s" (Qvalue.Qprint.to_string v));
      P.Client.close c)

(* ------------------------------------------------------------------ *)
(* Plan-cache hits must explain identically                            *)
(* ------------------------------------------------------------------ *)

let doc_ops (doc : string) : string list =
  let re = Str.regexp "\"op\":\"\\([a-z_]+\\)\"" in
  let rec go acc pos =
    match Str.search_forward re doc pos with
    | exception Not_found -> List.rev acc
    | p -> go (Str.matched_group 1 doc :: acc) (p + 1)
  in
  go [] 0

let test_plan_cache_hit_stability () =
  with_platform (marketdata_db ()) (fun p ->
      let c = P.Client.connect p in
      let ex = (P.obs p).Obs.Ctx.explain in
      (* the connection's very first statement bumps the scope
         generations the cache key includes, so warm up first *)
      ignore (ok (P.Client.query c "select t:sum Size from trades"));
      let q = ".hq.explain select Price from trades where Size>5" in
      ignore (ok (P.Client.query c q));
      let first =
        match Obs.Explain.recent ex 1 with
        | [ pl ] -> pl
        | _ -> Alcotest.fail "no first entry"
      in
      ignore (ok (P.Client.query c q));
      let second =
        match Obs.Explain.recent ex 1 with
        | [ pl ] -> pl
        | _ -> Alcotest.fail "no second entry"
      in
      check tstr "first run misses" "miss" first.Obs.Explain.p_cache;
      check tstr "second run hits the template" "hit"
        second.Obs.Explain.p_cache;
      (* the template path must execute the same plan: identical operator
         sequence, identical row counts *)
      check
        Alcotest.(list string)
        "tree shape stable across cache hit"
        (doc_ops first.Obs.Explain.p_tree)
        (doc_ops second.Obs.Explain.p_tree);
      check tint "row counts stable" first.Obs.Explain.p_rows_out
        second.Obs.Explain.p_rows_out;
      P.Client.close c)

(* ------------------------------------------------------------------ *)
(* Sampling, cardinality feedback, recorder and HTTP surfaces          *)
(* ------------------------------------------------------------------ *)

let test_tail_sampling () =
  with_platform ~analyze_sample:3 (marketdata_db ()) (fun p ->
      let c = P.Client.connect p in
      for _ = 1 to 6 do
        ignore (ok (P.Client.query c "select t:sum Size from trades"))
      done;
      check tint "1-in-3 sampling analyzed 2 of 6" 2
        (Obs.Explain.analyzed_total (P.obs p).Obs.Ctx.explain);
      P.Client.close c)

let test_cardinality_feedback () =
  with_platform ~analyze_sample:1 (marketdata_db ()) (fun p ->
      let c = P.Client.connect p in
      let q = "select a:avg Price by Symbol from trades" in
      ignore (ok (P.Client.query c q));
      ignore (ok (P.Client.query c q));
      let qstats = (P.obs p).Obs.Ctx.qstats in
      (match Obs.Qstats.worst_misestimates qstats 5 with
      | [] -> Alcotest.fail "no analyzed fingerprints"
      | e :: _ ->
          check tbool "analyzed runs counted" true (e.Obs.Qstats.e_analyzed >= 2);
          check tbool "rows scanned accumulated" true
            (e.Obs.Qstats.e_rows_scanned > 0);
          check tbool "q-error clamped >= 1" true
            (e.Obs.Qstats.e_worst_qerror >= 1.0);
          check tbool "worst operator named" true
            (e.Obs.Qstats.e_worst_op <> ""));
      (* the feedback columns ride on .hq.top *)
      (match ok (P.Client.query c ".hq.top[5]") with
      | QV.Table t ->
          List.iter
            (fun col ->
              check tbool (col ^ " column present") true
                (List.mem col (Array.to_list t.QV.cols)))
            [ "analyzed"; "rows_scanned_avg"; "worst_qerror"; "worst_op" ]
      | v -> Alcotest.failf "expected table, got %s" (Qvalue.Qprint.to_string v));
      P.Client.close c)

let test_recorder_attaches_tree () =
  with_platform ~analyze_sample:1 (marketdata_db ()) (fun p ->
      Obs.Recorder.set_threshold (P.obs p).Obs.Ctx.recorder 0.0;
      let c = P.Client.connect p in
      ignore (ok (P.Client.query c "select t:sum Size from trades"));
      (match Obs.Recorder.recent (P.obs p).Obs.Ctx.recorder 1 with
      | [ r ] ->
          check tbool "slow entry carries the operator tree" true
            (String.length r.Obs.Recorder.r_ops > 0);
          check tbool "top operator identified" true
            (r.Obs.Recorder.r_top_operator <> "")
      | _ -> Alcotest.fail "recorder captured nothing");
      (* surfaced as the .hq.slow top_operator column *)
      (match ok (P.Client.query c ".hq.slow[1]") with
      | QV.Table t ->
          check tbool "top_operator column" true
            (List.mem "top_operator" (Array.to_list t.QV.cols))
      | v -> Alcotest.failf "expected table, got %s" (Qvalue.Qprint.to_string v));
      P.Client.close c)

let http_get (p : P.t) (path : string) : string =
  H.handle (P.admin_handler p)
    (Printf.sprintf "GET %s HTTP/1.1\r\nHost: t\r\n\r\n" path)

(* plain substring search: Str's [.] does not cross the newlines in an
   HTTP response *)
let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i =
    i + nl <= hl && (String.sub hay i nl = needle || go (i + 1))
  in
  nl = 0 || go 0

let test_explain_json_endpoint () =
  let d = MD.generate MD.small_scale in
  let db = Db.create () in
  MD.load_pg db d;
  with_platform ~shards:2 db (fun p ->
      let c = P.Client.connect p in
      ignore
        (ok (P.Client.query c ".hq.explain select mx:max Price by Symbol \
                               from trades"));
      let body = http_get p "/explain.json" in
      check tbool "200" true (contains body "200");
      List.iter
        (fun k -> check tbool (k ^ " present") true (contains body k))
        [
          "\"plans\"";
          "\"route\":\"partial_agg\"";
          "\"pipeline\"";
          "\"executor\"";
          "\"rows_scanned\"";
          "\"top_operator\"";
        ];
      (* the grouped aggregate lowers on the shards, so the scan node is
         the vectorized one; either spelling proves a plan attached *)
      check tbool "scan node present" true
        (contains body "\"op\":\"vector_scan\""
        || contains body "\"op\":\"scan\"");
      (* ?n= limits the ring read: the newest plan routes single, the
         older partial_agg one must drop out *)
      ignore
        (ok
           (P.Client.query c
              (Printf.sprintf ".hq.explain select from trades where \
                               Symbol=`%s" d.MD.syms.(0))));
      let limited = http_get p "/explain.json?n=1" in
      check tbool "limited read skips older plans" true
        (not (contains limited "partial_agg"));
      (* reset clears the ring *)
      (match ok (P.Client.query c ".hq.stats.reset") with
      | QV.Atom (Qvalue.Atom.Sym "reset") -> ()
      | v -> Alcotest.failf "expected `reset, got %s" (Qvalue.Qprint.to_string v));
      check tint "ring empty after reset" 0
        (Obs.Explain.size (P.obs p).Obs.Ctx.explain);
      P.Client.close c)

(* a Q join (lj) analyzed through the platform renders the vectorized
   join operator — with its build/probe detail — in both the .hq.explain
   operator table and the /explain.json document *)
let test_vector_join_rendered () =
  let d = MD.generate MD.small_scale in
  let db = Db.create () in
  MD.load_pg db d;
  with_platform ~shards:2 db (fun p ->
      let c = P.Client.connect p in
      (match
         ok
           (P.Client.query c
              ".hq.explain select qty:sum Size by Sector from trades lj \
               secmaster_w")
       with
      | QV.Table t ->
          check tbool "vector_hash_join in the operator table" true
            (List.mem "vector_hash_join" (column_syms t "op"))
      | v -> Alcotest.failf "expected table, got %s" (Qvalue.Qprint.to_string v));
      let body = http_get p "/explain.json" in
      check tbool "join op rendered" true
        (contains body "\"op\":\"vector_hash_join\"");
      check tbool "build/probe detail rendered" true (contains body "build=");
      P.Client.close c)

let () =
  Alcotest.run "explain"
    [
      ( "executor",
        [
          Alcotest.test_case "tree shape" `Quick test_exec_tree_shape;
          Alcotest.test_case "vector hash join node" `Quick
            test_vector_hash_join_node;
          Alcotest.test_case "aggregate and join" `Quick
            test_exec_aggregate_and_join;
          Alcotest.test_case "off collects nothing" `Quick
            test_exec_off_collects_nothing;
          Alcotest.test_case "q-error" `Quick test_qerror_accounting;
        ] );
      ( ".hq.explain",
        [
          Alcotest.test_case "25-query workload sharded" `Quick
            test_workload_explains_sharded;
          Alcotest.test_case "route explanations" `Quick
            test_route_explanations;
          Alcotest.test_case "unsharded" `Quick test_explain_unsharded;
        ] );
      ( "plan cache",
        [
          Alcotest.test_case "hit explains identically" `Quick
            test_plan_cache_hit_stability;
        ] );
      ( "feedback",
        [
          Alcotest.test_case "tail sampling" `Quick test_tail_sampling;
          Alcotest.test_case "cardinality store" `Quick
            test_cardinality_feedback;
          Alcotest.test_case "recorder tree" `Quick
            test_recorder_attaches_tree;
          Alcotest.test_case "/explain.json" `Quick
            test_explain_json_endpoint;
          Alcotest.test_case "vector join rendered" `Quick
            test_vector_join_rendered;
        ] );
    ]
