(* End-to-end tests for the Hyper-Q translation pipeline (lib/hyperq):
   Q text in, SQL against pgdb, Q values out. *)

module V = Pgdb.Value
module Db = Pgdb.Db
module S = Catalog.Schema
module Ty = Catalog.Sqltype
module QV = Qvalue.Value
module QA = Qvalue.Atom

let check = Alcotest.check
let tint = Alcotest.int
let tbool = Alcotest.bool

(* backend fixture: trades/quotes with implicit order columns, plus a keyed
   reference table *)
let make_db () =
  let db = Db.create () in
  Db.load_table db
    (S.table ~order_col:"hq_ord" "trades"
       [
         S.column "hq_ord" Ty.TBigint;
         S.column "Symbol" Ty.TVarchar;
         S.column "Date" Ty.TDate;
         S.column "Time" Ty.TTime;
         S.column "Price" Ty.TDouble;
         S.column "Size" Ty.TBigint;
       ])
    (List.mapi
       (fun i (sym, time, px, sz) ->
         [|
           V.Int (Int64.of_int i);
           V.Str sym;
           V.Date 6021 (* 2016.06.26 *);
           V.Time time;
           V.Float px;
           V.Int (Int64.of_int sz);
         |])
       [
         ("A", 1000, 10.0, 100);
         ("B", 2000, 20.0, 200);
         ("A", 3000, 11.0, 150);
         ("B", 4000, 21.0, 250);
         ("A", 5000, 12.0, 300);
       ]);
  Db.load_table db
    (S.table ~order_col:"hq_ord" "quotes"
       [
         S.column "hq_ord" Ty.TBigint;
         S.column "Symbol" Ty.TVarchar;
         S.column "Date" Ty.TDate;
         S.column "Time" Ty.TTime;
         S.column "Bid" Ty.TDouble;
         S.column "Ask" Ty.TDouble;
       ])
    (List.mapi
       (fun i (sym, time, bid, ask) ->
         [|
           V.Int (Int64.of_int i);
           V.Str sym;
           V.Date 6021;
           V.Time time;
           V.Float bid;
           V.Float ask;
         |])
       [
         ("A", 500, 9.9, 10.1);
         ("B", 1500, 19.9, 20.1);
         ("A", 2500, 10.9, 11.1);
         ("B", 3500, 20.9, 21.1);
       ]);
  Db.load_table db
    (S.table ~keys:[ "Symbol" ] "secmaster"
       [ S.column "Symbol" Ty.TVarchar; S.column "Sector" Ty.TVarchar ])
    [
      [| V.Str "A"; V.Str "tech" |];
      [| V.Str "B"; V.Str "energy" |];
    ];
  db

let make_engine ?config () =
  let db = make_db () in
  let sess = Db.open_session db in
  Hyperq.Engine.create ?config (Hyperq.Backend.of_pgdb_session sess)

let run eng src =
  match Hyperq.Engine.try_run eng src with
  | Ok { value = Some v; _ } -> v
  | Ok { value = None; _ } -> Alcotest.failf "no value for %s" src
  | Error e -> Alcotest.failf "%s failed: %s" src e

let run_unit eng src =
  match Hyperq.Engine.try_run eng src with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "%s failed: %s" src e

let as_table v =
  match v with
  | QV.Table t -> t
  | QV.KTable _ -> ( match QV.unkey v with QV.Table t -> t | _ -> assert false)
  | v -> Alcotest.failf "expected a table, got %s" (Qvalue.Qprint.to_string v)

let float_col t name =
  QV.elements (QV.column_exn t name)
  |> Array.map (function
       | QV.Atom (QA.Float f) -> f
       | QV.Atom a when QA.is_null a -> Float.nan
       | v -> Alcotest.failf "expected float, got %s" (Qvalue.Qprint.to_string v))

(* ------------------------------------------------------------------ *)
(* Basic selects                                                       *)
(* ------------------------------------------------------------------ *)

let test_select_where () =
  let eng = make_engine () in
  let t = as_table (run eng "select Price from trades where Symbol=`A") in
  check tint "3 rows" 3 (QV.table_length t);
  check (Alcotest.array (Alcotest.float 1e-9)) "prices preserve Q order"
    [| 10.0; 11.0; 12.0 |] (float_col t "Price")

let test_generated_sql_uses_2vl () =
  let eng = make_engine () in
  let sql = Hyperq.Engine.translate eng "select Price from trades where Symbol=`A" in
  check tbool "uses IS NOT DISTINCT FROM" true
    (let re = Str.regexp_string "IS NOT DISTINCT FROM" in
     try ignore (Str.search_forward re sql 0); true with Not_found -> false)

let test_order_preserved () =
  (* Q tables are ordered: the output must follow the implicit order column *)
  let eng = make_engine () in
  let sql = Hyperq.Engine.translate eng "select Price from trades" in
  check tbool "ORDER BY injected" true
    (let re = Str.regexp_string "ORDER BY" in
     try ignore (Str.search_forward re sql 0); true with Not_found -> false)

let test_scalar_aggregate_elides_order () =
  (* paper Section 3.3: a scalar aggregation over a nested query lets the
     Xformer remove the inner ordering requirement *)
  let eng = make_engine () in
  let sql = Hyperq.Engine.translate eng "select max Price from trades" in
  check tbool "no ORDER BY under scalar agg" false
    (let re = Str.regexp_string "ORDER BY" in
     try ignore (Str.search_forward re sql 0); true with Not_found -> false)

let test_computed_columns () =
  let eng = make_engine () in
  let t =
    as_table (run eng "select notional:Price*Size from trades where Symbol=`B")
  in
  check (Alcotest.array (Alcotest.float 1e-9)) "notional"
    [| 4000.0; 5250.0 |] (float_col t "notional")

let test_sequential_where () =
  let eng = make_engine () in
  let t =
    as_table (run eng "select Price from trades where Symbol=`A, Price>10.5")
  in
  check tint "2 rows" 2 (QV.table_length t)

let test_select_by () =
  let eng = make_engine () in
  match run eng "select mx:max Price, n:count Price by Symbol from trades" with
  | QV.KTable (k, v) ->
      check tbool "keys" true
        (QV.equal (QV.column_exn k "Symbol") (QV.syms [| "A"; "B" |]));
      check tbool "max" true
        (QV.equal (QV.column_exn v "mx") (QV.floats [| 12.0; 21.0 |]));
      check tbool "count" true
        (QV.equal (QV.column_exn v "n") (QV.longs [| 3; 2 |]))
  | v -> Alcotest.failf "expected keyed table, got %s" (Qvalue.Qprint.to_string v)

let test_exec_vector () =
  let eng = make_engine () in
  match run eng "exec Price from trades where Symbol=`A" with
  | QV.Vector (Qvalue.Qtype.Float, _) as v ->
      check tbool "vector" true (QV.equal v (QV.floats [| 10.0; 11.0; 12.0 |]))
  | v -> Alcotest.failf "expected vector, got %s" (Qvalue.Qprint.to_string v)

let test_scalar_result () =
  let eng = make_engine () in
  match run eng "select max Price from trades" with
  | QV.Table t ->
      check tint "1 row" 1 (QV.table_length t);
      check (Alcotest.array (Alcotest.float 1e-9)) "max" [| 21.0 |]
        (float_col t "Price")
  | v -> Alcotest.failf "expected table, got %s" (Qvalue.Qprint.to_string v)

let test_in_filter () =
  let eng = make_engine () in
  run_unit eng "syms:`A`B";
  let t = as_table (run eng "select Price from trades where Symbol in syms") in
  check tint "all rows" 5 (QV.table_length t)

let test_update () =
  let eng = make_engine () in
  let t = as_table (run eng "update Price:2*Price from trades where Symbol=`A") in
  check (Alcotest.array (Alcotest.float 1e-9)) "doubled A prices"
    [| 20.0; 20.0; 22.0; 21.0; 24.0 |]
    (float_col t "Price")

let test_update_by_window () =
  let eng = make_engine () in
  let t = as_table (run eng "update mx:max Price by Symbol from trades") in
  check (Alcotest.array (Alcotest.float 1e-9)) "group max spread"
    [| 12.0; 21.0; 12.0; 21.0; 12.0 |]
    (float_col t "mx")

let test_delete_rows () =
  let eng = make_engine () in
  let t = as_table (run eng "delete from trades where Symbol=`A") in
  check tint "2 rows left" 2 (QV.table_length t)

let test_delete_cols () =
  let eng = make_engine () in
  let t = as_table (run eng "delete Size from trades") in
  check tbool "Size gone" false (QV.has_column t "Size")

(* ------------------------------------------------------------------ *)
(* Joins                                                               *)
(* ------------------------------------------------------------------ *)

let test_asof_join_example1 () =
  (* the paper's Example 1 / Example 2 query *)
  let eng = make_engine () in
  let t = as_table (run eng "aj[`Symbol`Time; trades; quotes]") in
  check tint "one row per trade" 5 (QV.table_length t);
  check (Alcotest.array (Alcotest.float 1e-9)) "prevailing bids"
    [| 9.9; 19.9; 10.9; 20.9; 10.9 |]
    (float_col t "Bid")

let test_asof_join_with_subqueries () =
  (* Example 1 verbatim: aj over two inner selects *)
  let eng = make_engine () in
  run_unit eng "SOMEDATE:2016.06.26";
  run_unit eng "SYMLIST:`A`B";
  let q =
    "aj[`Symbol`Time; select Symbol, Time, Price from trades where \
     Date=SOMEDATE, Symbol in SYMLIST; select Symbol, Time, Bid, Ask from \
     quotes where Date=SOMEDATE]"
  in
  let t = as_table (run eng q) in
  check tint "5 rows" 5 (QV.table_length t);
  check (Alcotest.array (Alcotest.float 1e-9)) "bids"
    [| 9.9; 19.9; 10.9; 20.9; 10.9 |]
    (float_col t "Bid")

let test_lj () =
  let eng = make_engine () in
  let t = as_table (run eng "trades lj secmaster") in
  check tint "5 rows" 5 (QV.table_length t);
  check tbool "sector joined" true
    (QV.equal
       (QV.column_exn t "Sector")
       (QV.syms [| "tech"; "energy"; "tech"; "energy"; "tech" |]))

let test_uj () =
  (* union join: concatenation with column-set union and null padding *)
  let eng = make_engine () in
  let t = as_table (run eng "trades uj quotes") in
  check tint "rows concatenate" 9 (QV.table_length t);
  check tbool "has trade cols" true (QV.has_column t "Price");
  check tbool "has quote cols" true (QV.has_column t "Bid");
  (* trade rows are null-padded on quote columns *)
  (match QV.index (QV.column_exn t "Bid") 0 with
  | QV.Atom a -> check tbool "trade row Bid is null" true (QA.is_null a)
  | _ -> Alcotest.fail "expected atom");
  (* quote rows follow all trade rows (concatenation order) *)
  match QV.index (QV.column_exn t "Bid") 5 with
  | QV.Atom a -> check tbool "quote row has Bid" false (QA.is_null a)
  | _ -> Alcotest.fail "expected atom"

let test_uj_agrees_with_kdb () =
  let d = Workload.Marketdata.generate Workload.Marketdata.small_scale in
  let h = Sidebyside.Framework.create d in
  match
    Sidebyside.Framework.compare_query h
      "select Symbol, Price, Bid from trades uj quotes"
  with
  | Sidebyside.Framework.Match -> ()
  | v -> Alcotest.fail (Sidebyside.Framework.verdict_str v)

let test_fby () =
  let eng = make_engine () in
  let t =
    as_table (run eng "select from trades where Price=(max;Price) fby Symbol")
  in
  check tint "2 rows" 2 (QV.table_length t);
  check (Alcotest.array (Alcotest.float 1e-9)) "max prices"
    [| 21.0; 12.0 |] (float_col t "Price")

(* ------------------------------------------------------------------ *)
(* Variables, functions, materialization (paper Example 3)             *)
(* ------------------------------------------------------------------ *)

let paper_example3 =
  "f:{[Sym] dt: select Price from trades where Symbol=Sym; :select max \
   Price from dt}"

let test_function_unrolling_logical () =
  let eng = make_engine () in
  run_unit eng paper_example3;
  let t = as_table (run eng "f[`A]") in
  check (Alcotest.array (Alcotest.float 1e-9)) "max A price" [| 12.0 |]
    (float_col t "Price")

let test_function_unrolling_physical () =
  (* physical materialization: the paper's exact CREATE TEMPORARY TABLE
     strategy (Section 4.3) *)
  let config = Hyperq.Engine.default_config () in
  config.Hyperq.Engine.materialization <- `Physical;
  let eng = make_engine ~config () in
  run_unit eng paper_example3;
  match Hyperq.Engine.try_run eng "f[`A]" with
  | Ok { value = Some v; sqls } ->
      let t = as_table v in
      check (Alcotest.array (Alcotest.float 1e-9)) "max A price" [| 12.0 |]
        (float_col t "Price");
      check tbool "emitted CREATE TEMPORARY TABLE" true
        (List.exists
           (fun sql ->
             String.length sql >= 22
             && String.sub sql 0 22 = "CREATE TEMPORARY TABLE")
           sqls)
  | Ok _ -> Alcotest.fail "no value"
  | Error e -> Alcotest.fail e

let test_local_shadows_global () =
  let eng = make_engine () in
  run_unit eng "x:1.5";
  run_unit eng "g:{[x] x+1}";
  (match run eng "g[10]" with
  | QV.Atom (QA.Long 11L) -> ()
  | v -> Alcotest.failf "expected 11, got %s" (Qvalue.Qprint.to_string v));
  (* the global x is untouched by the call *)
  match run eng "x" with
  | QV.Atom (QA.Float f) -> check (Alcotest.float 1e-9) "x intact" 1.5 f
  | v -> Alcotest.failf "expected 1.5, got %s" (Qvalue.Qprint.to_string v)

let test_session_promotion () =
  (* session variables become server-visible after session destruction *)
  let db = make_db () in
  let server = Hyperq.Scopes.create_server_frame () in
  let eng1 =
    Hyperq.Engine.create ~server_scope:server
      (Hyperq.Backend.of_pgdb_session (Db.open_session db))
  in
  run_unit eng1 "shared:42";
  (* before destruction, a second session does not see it *)
  let eng2 =
    Hyperq.Engine.create ~server_scope:server
      (Hyperq.Backend.of_pgdb_session (Db.open_session db))
  in
  (match Hyperq.Engine.try_run eng2 "shared" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "session variable leaked before promotion");
  Hyperq.Engine.close_session eng1;
  match run eng2 "shared" with
  | QV.Atom (QA.Long 42L) -> ()
  | v -> Alcotest.failf "expected 42, got %s" (Qvalue.Qprint.to_string v)

let test_scalar_expression () =
  let eng = make_engine () in
  match run eng "1+2" with
  | QV.Atom (QA.Long 3L) -> ()
  | v -> Alcotest.failf "expected 3, got %s" (Qvalue.Qprint.to_string v)

let test_table_literal () =
  let eng = make_engine () in
  let t = as_table (run eng "select v from ([] s:`x`y; v:1 2) where s=`y") in
  check tint "1 row" 1 (QV.table_length t)

(* ------------------------------------------------------------------ *)
(* Error behaviour (paper Section 5: verbose error messages)           *)
(* ------------------------------------------------------------------ *)

let test_multiday_asof () =
  (* multi-day data: the partition-wise rewrite kdb+ users do by hand
     (paper Section 2.2) is unnecessary — the date joins as an equality
     column *)
  let db = Db.create () in
  Db.load_table db
    (S.table ~order_col:"hq_ord" "t1"
       [
         S.column "hq_ord" Ty.TBigint;
         S.column "s" Ty.TVarchar;
         S.column "d" Ty.TDate;
         S.column "tm" Ty.TTime;
         S.column "px" Ty.TDouble;
       ])
    [
      [| V.Int 0L; V.Str "A"; V.Date 100; V.Time 1000; V.Float 1.0 |];
      [| V.Int 1L; V.Str "A"; V.Date 101; V.Time 1000; V.Float 2.0 |];
    ];
  Db.load_table db
    (S.table ~order_col:"hq_ord" "t2"
       [
         S.column "hq_ord" Ty.TBigint;
         S.column "s" Ty.TVarchar;
         S.column "d" Ty.TDate;
         S.column "tm" Ty.TTime;
         S.column "bid" Ty.TDouble;
       ])
    [
      [| V.Int 0L; V.Str "A"; V.Date 100; V.Time 500; V.Float 0.9 |];
      [| V.Int 1L; V.Str "A"; V.Date 101; V.Time 500; V.Float 1.9 |];
    ];
  let eng =
    Hyperq.Engine.create (Hyperq.Backend.of_pgdb_session (Db.open_session db))
  in
  let t = as_table (run eng "aj[`s`d`tm; t1; t2]") in
  check (Alcotest.array (Alcotest.float 1e-9))
    "each day matches its own quote" [| 0.9; 1.9 |] (float_col t "bid")

let test_error_log () =
  let eng = make_engine () in
  (match Hyperq.Engine.try_run eng "select X from missing1" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected error");
  (match Hyperq.Engine.try_run eng "while[1b;x]" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected error");
  let log = Hyperq.Engine.recent_errors eng in
  check tint "two entries" 2 (List.length log);
  (* newest first, with query text attached *)
  match log with
  | (q1, e1) :: (q2, _) :: _ ->
      check tbool "newest first" true (q1 = "while[1b;x]");
      check tbool "categorised" true (String.length e1 > 0 && e1.[0] = '[');
      check tbool "query kept" true (q2 = "select X from missing1")
  | _ -> Alcotest.fail "bad log shape"

let test_unsupported_is_clean () =
  let eng = make_engine () in
  (match Hyperq.Engine.try_run eng "while[1b;x:1]" with
  | Error e ->
      check tbool "mentions unsupported" true
        (let re = Str.regexp_string "unsupported" in
         try ignore (Str.search_forward re e 0); true with Not_found -> false)
  | Ok _ -> Alcotest.fail "while should be unsupported");
  match Hyperq.Engine.try_run eng "select Price from nonexistent_table" with
  | Error e ->
      check tbool "names the missing table" true
        (let re = Str.regexp_string "nonexistent_table" in
         try ignore (Str.search_forward re e 0); true with Not_found -> false)
  | Ok _ -> Alcotest.fail "missing table should error"

(* ------------------------------------------------------------------ *)
(* Metadata cache                                                      *)
(* ------------------------------------------------------------------ *)

let test_metadata_cache () =
  let db = make_db () in
  let backend = Hyperq.Backend.of_pgdb_session (Db.open_session db) in
  let eng = Hyperq.Engine.create backend in
  run_unit eng "select Price from trades where Symbol=`A";
  run_unit eng "select Price from trades where Symbol=`B";
  run_unit eng "select Price from trades where Symbol=`A";
  let lookups, misses = Hyperq.Mdi.stats (Hyperq.Engine.mdi eng) in
  check tbool "several lookups" true (lookups >= 3);
  check tint "single backend miss with caching" 1 misses

let test_metadata_cache_disabled () =
  let db = make_db () in
  let backend = Hyperq.Backend.of_pgdb_session (Db.open_session db) in
  let mdi_config = Hyperq.Mdi.default_config () in
  mdi_config.Hyperq.Mdi.cache_enabled <- false;
  let eng = Hyperq.Engine.create ~mdi_config backend in
  run_unit eng "select Price from trades";
  run_unit eng "select Price from trades";
  let _, misses = Hyperq.Mdi.stats (Hyperq.Engine.mdi eng) in
  check tbool "every lookup hits the backend" true (misses >= 2)

(* ------------------------------------------------------------------ *)
(* Xformer ablations                                                   *)
(* ------------------------------------------------------------------ *)

let test_pruning_shrinks_sql () =
  let config_on = Hyperq.Engine.default_config () in
  let config_off = Hyperq.Engine.default_config () in
  config_off.Hyperq.Engine.xformer.Hyperq.Xformer.enable_pruning <- false;
  let eng_on = make_engine ~config:config_on () in
  let eng_off = make_engine ~config:config_off () in
  let q = "select mx:max Price by Symbol from trades" in
  let sql_on = Hyperq.Engine.translate eng_on q in
  let sql_off = Hyperq.Engine.translate eng_off q in
  check tbool "pruned SQL is no longer than unpruned" true
    (String.length sql_on <= String.length sql_off)

let test_no_2vl_changes_semantics () =
  (* with the 2VL pass disabled, generated SQL uses plain '=' *)
  let config = Hyperq.Engine.default_config () in
  config.Hyperq.Engine.xformer.Hyperq.Xformer.enable_2vl <- false;
  let eng = make_engine ~config () in
  let sql = Hyperq.Engine.translate eng "select Price from trades where Symbol=`A" in
  check tbool "falls back to =" false
    (let re = Str.regexp_string "IS NOT DISTINCT FROM" in
     try ignore (Str.search_forward re sql 0); true with Not_found -> false)

let () =
  Alcotest.run "hyperq"
    [
      ( "selects",
        [
          Alcotest.test_case "select where" `Quick test_select_where;
          Alcotest.test_case "2VL rewrite in SQL" `Quick
            test_generated_sql_uses_2vl;
          Alcotest.test_case "order preserved" `Quick test_order_preserved;
          Alcotest.test_case "order elision under scalar agg" `Quick
            test_scalar_aggregate_elides_order;
          Alcotest.test_case "computed columns" `Quick test_computed_columns;
          Alcotest.test_case "sequential where" `Quick test_sequential_where;
          Alcotest.test_case "select by" `Quick test_select_by;
          Alcotest.test_case "exec vector" `Quick test_exec_vector;
          Alcotest.test_case "scalar aggregate" `Quick test_scalar_result;
          Alcotest.test_case "in filter" `Quick test_in_filter;
          Alcotest.test_case "update" `Quick test_update;
          Alcotest.test_case "update by (window)" `Quick
            test_update_by_window;
          Alcotest.test_case "delete rows" `Quick test_delete_rows;
          Alcotest.test_case "delete columns" `Quick test_delete_cols;
        ] );
      ( "joins",
        [
          Alcotest.test_case "as-of join (Example 1)" `Quick
            test_asof_join_example1;
          Alcotest.test_case "as-of join over subqueries" `Quick
            test_asof_join_with_subqueries;
          Alcotest.test_case "lj" `Quick test_lj;
          Alcotest.test_case "multi-day as-of join" `Quick test_multiday_asof;
          Alcotest.test_case "uj" `Quick test_uj;
          Alcotest.test_case "uj agrees with kdb" `Quick
            test_uj_agrees_with_kdb;
          Alcotest.test_case "fby" `Quick test_fby;
        ] );
      ( "variables",
        [
          Alcotest.test_case "function unrolling (logical)" `Quick
            test_function_unrolling_logical;
          Alcotest.test_case "function unrolling (physical, Example 3)"
            `Quick test_function_unrolling_physical;
          Alcotest.test_case "local shadows global" `Quick
            test_local_shadows_global;
          Alcotest.test_case "session promotion" `Quick
            test_session_promotion;
          Alcotest.test_case "scalar expression" `Quick
            test_scalar_expression;
          Alcotest.test_case "table literal" `Quick test_table_literal;
        ] );
      ( "errors",
        [
          Alcotest.test_case "clean errors" `Quick test_unsupported_is_clean;
          Alcotest.test_case "error log (Section 5)" `Quick test_error_log;
        ] );
      ( "metadata",
        [
          Alcotest.test_case "cache hit behaviour" `Quick test_metadata_cache;
          Alcotest.test_case "cache disabled" `Quick
            test_metadata_cache_disabled;
        ] );
      ( "ablations",
        [
          Alcotest.test_case "pruning shrinks SQL" `Quick
            test_pruning_shrinks_sql;
          Alcotest.test_case "2VL pass off" `Quick test_no_2vl_changes_semantics;
        ] );
    ]
