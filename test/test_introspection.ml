(* Workload introspection plane tests: query fingerprint normalization,
   the LRU fingerprint statistics store, the slow-query flight recorder
   (trace-id stamped), the hand-rolled HTTP admin endpoint (hardened:
   414, Allow on 405, Content-Length everywhere), and the in-band
   .hq.top / .hq.slow / .hq.stats.reset admin queries over a scripted
   workload. *)

module F = Qlang.Fingerprint
module M = Obs.Metrics
module QS = Obs.Qstats
module R = Obs.Recorder
module H = Obs.Http
module Tr = Obs.Trace
module QV = Qvalue.Value
module QA = Qvalue.Atom
module V = Pgdb.Value
module Db = Pgdb.Db
module S = Catalog.Schema
module Ty = Catalog.Sqltype
module P = Platform.Hyperq_platform

let check = Alcotest.check
let tint = Alcotest.int
let tbool = Alcotest.bool
let tstr = Alcotest.string

let contains hay needle =
  let re = Str.regexp_string needle in
  try
    ignore (Str.search_forward re hay 0);
    true
  with Not_found -> false

(* ------------------------------------------------------------------ *)
(* Fingerprint normalization                                           *)
(* ------------------------------------------------------------------ *)

let same a b =
  check tstr
    (Printf.sprintf "fingerprint(%s) = fingerprint(%s)" a b)
    (F.fingerprint a) (F.fingerprint b)

let differ a b =
  check tbool
    (Printf.sprintf "fingerprint(%s) <> fingerprint(%s)" a b)
    true
    (F.fingerprint a <> F.fingerprint b)

let test_fp_numeric_literals () =
  same "select Price from trades where Size>100"
    "select Price from trades where Size>999";
  same "x+1" "x+2.5";
  (* juxtaposed vector literals collapse to one placeholder *)
  same "sum 1 2 3" "sum 4 5";
  same "f[1;2;3]" "f[9;8;7]"

let test_fp_string_and_symbol_literals () =
  same "g \"abc\"" "g \"something much longer\"";
  same "select from trades where Symbol=`AAA"
    "select from trades where Symbol=`ZZZ";
  (* symbol vectors normalize like single symbols *)
  same "aj[`Symbol`Time; trades; quotes]" "aj[`Sym2`T2; trades; quotes]"
    |> ignore;
  (* but those two differ in nothing else, so they must share *)
  same "f `a`b`c" "f `x"

let test_fp_whitespace_and_comments () =
  same "select   Price    from trades" "select Price from trades";
  same "select Price from trades / trailing comment"
    "select Price from trades";
  same "select Price from trades\n" "select Price from trades";
  same "select Price from trades;" "select Price from trades"

let test_fp_lambda_bodies () =
  same "f:{x+1}" "f:{x+42}";
  same "{[a;b] a+b*2}" "{[a;b] a+b*7}";
  differ "f:{x+1}" "f:{x-1}"

let test_fp_shapes_differ () =
  differ "select Price from trades" "select Size from trades";
  differ "a+1" "a-1";
  differ "select Price from trades" "select Price from quotes";
  differ "sum x" "avg x"

let test_fp_lexer_fallback () =
  (* bytes the lexer rejects still fingerprint stably (via collapsed
     raw text) instead of raising *)
  let junk = "select \xc3\xa9 from trades \"unterminated" in
  check tstr "fallback is deterministic" (F.fingerprint junk)
    (F.fingerprint junk);
  check tbool "fallback collapses whitespace" true
    (F.fingerprint "a   @@\x01  b" = F.fingerprint "a @@\x01 b")

let test_fp_normalized_text () =
  check tstr "literals stripped" "select Price from trades where Size > ?"
    (F.normalize "select Price from trades where Size>100");
  check tstr "symbols stripped" "f `?" (F.normalize "f `abc`def");
  check tstr "strings stripped" "g ?" (F.normalize "g \"hello\"")

(* ------------------------------------------------------------------ *)
(* Fingerprint statistics store                                        *)
(* ------------------------------------------------------------------ *)

let record ?(fp = "fp") ?(dur = 0.01) ?(err = None) ?(rows = 1) qs =
  QS.record qs ~fingerprint:fp ~query:("q-" ^ fp) ~duration_s:dur
    ~error_class:err ~rows_out:rows ~bytes_in:10 ~bytes_out:20
    ~stages:[ ("parse", 0.001); ("execute", 0.005) ]
    ()

let test_qstats_accumulation () =
  let qs = QS.create () in
  record qs ~fp:"a" ~dur:0.01;
  record qs ~fp:"a" ~dur:0.03 ~err:(Some "binder");
  record qs ~fp:"b" ~dur:0.002;
  check tint "two fingerprints" 2 (QS.size qs);
  let a = Option.get (QS.find qs "a") in
  check tint "calls" 2 a.QS.e_calls;
  check tint "errors" 1 a.QS.e_errors;
  check tint "error class counted" 1 (List.assoc "binder" a.QS.e_error_classes);
  check tbool "total accumulates" true
    (Float.abs (a.QS.e_total_s -. 0.04) < 1e-9);
  check tbool "stage sums accumulate" true
    (Float.abs (List.assoc "parse" a.QS.e_stages -. 0.002) < 1e-9);
  check tint "rows accumulate" 2 a.QS.e_rows_out;
  check tint "bytes accumulate" 20 a.QS.e_bytes_in;
  (* top is sorted by total time *)
  match QS.top qs 10 with
  | [ first; second ] ->
      check tstr "heaviest first" "a" first.QS.e_fingerprint;
      check tstr "lightest second" "b" second.QS.e_fingerprint
  | l -> Alcotest.failf "expected 2 entries, got %d" (List.length l)

let test_qstats_lru_eviction () =
  let qs = QS.create ~capacity:4 () in
  List.iter (fun fp -> record qs ~fp) [ "a"; "b"; "c"; "d" ];
  (* touch "a" so it is the most recently used *)
  record qs ~fp:"a";
  record qs ~fp:"e";
  (* capacity respected; "b" (least recently used) evicted *)
  check tint "size bounded" 4 (QS.size qs);
  check tint "one eviction" 1 (QS.evictions qs);
  check tbool "MRU survives" true (QS.find qs "a" <> None);
  check tbool "LRU evicted" true (QS.find qs "b" = None);
  (* hammering new fingerprints never exceeds capacity *)
  for i = 0 to 999 do
    record qs ~fp:(Printf.sprintf "fp%d" i)
  done;
  check tbool "still bounded" true (QS.size qs <= QS.capacity qs)

let test_qstats_percentile_and_reset () =
  let qs = QS.create () in
  for _ = 1 to 99 do
    record qs ~fp:"x" ~dur:0.0001 (* 100us *)
  done;
  record qs ~fp:"x" ~dur:0.5;
  let e = Option.get (QS.find qs "x") in
  let p50 = QS.entry_percentile e 50.0 in
  let p99 = QS.entry_percentile e 99.5 in
  check tbool "p50 near 100us (within 2x bucket)" true
    (p50 >= 0.0001 && p50 <= 0.0003);
  check tbool "tail hits the slow outlier" true (p99 >= 0.25);
  check tbool "avg between" true
    (QS.entry_avg_s e > 0.0001 && QS.entry_avg_s e < 0.5);
  QS.reset qs;
  check tint "reset empties" 0 (QS.size qs)

let test_qstats_prometheus_and_json () =
  let qs = QS.create () in
  record qs ~fp:"abc123";
  let prom = QS.to_prometheus ~k:5 qs in
  check tbool "calls series" true
    (contains prom "hq_fingerprint_calls_total{fingerprint=\"abc123\"} 1");
  check tbool "seconds series" true
    (contains prom "hq_fingerprint_seconds_total{fingerprint=\"abc123\"}");
  check tbool "type comment" true
    (contains prom "# TYPE hq_fingerprint_calls_total counter");
  let j = QS.to_json qs in
  check tbool "json has fingerprint" true (contains j "\"fingerprint\":\"abc123\"");
  check tbool "json has stages" true (contains j "\"stages_ms\"");
  check tbool "empty store renders empty exposition" true
    (QS.to_prometheus (QS.create ()) = "")

(* ------------------------------------------------------------------ *)
(* Slow-query flight recorder                                          *)
(* ------------------------------------------------------------------ *)

let span_of name =
  let tr = Tr.start name in
  Tr.finish tr

let observe ?(dur = 1.0) ?(status = "ok") ?(error = "") r i =
  R.observe r ~ts:(float_of_int i) ~fingerprint:"fp" ~query:"q"
    ~duration_s:dur ~status ~error
    ~sql:[ "SELECT 1" ]
    (span_of "query")

let test_recorder_threshold_and_bound () =
  let r = R.create ~capacity:8 ~threshold_s:0.1 () in
  check tbool "fast query not captured" false (observe r 1 ~dur:0.001);
  check tbool "slow query captured" true (observe r 2 ~dur:0.2);
  check tint "one record" 1 (R.size r);
  (* a 10k-query burst never grows the ring past its capacity *)
  for i = 0 to 9_999 do
    ignore (observe r i ~dur:1.0)
  done;
  check tint "ring bounded at capacity" 8 (R.size r);
  check tint "all slow queries counted" 10_001 (R.captured_slow r);
  (* newest first, newest survive the wraparound *)
  (match R.recent r 3 with
  | a :: b :: _ ->
      check tbool "newest first" true (a.R.r_ts >= b.R.r_ts);
      check tbool "newest retained" true (a.R.r_ts = 9999.0)
  | _ -> Alcotest.fail "expected records");
  R.reset r;
  check tint "reset empties ring" 0 (R.size r)

let test_recorder_tail_sampling () =
  let r = R.create ~capacity:100 ~threshold_s:10.0 ~sample_every:10 () in
  let captured = ref 0 in
  for i = 1 to 100 do
    if observe r i ~dur:0.001 then incr captured
  done;
  check tint "1-in-10 fast queries sampled" 10 !captured;
  check tint "sampled counter" 10 (R.captured_sampled r);
  check tint "no slow captures" 0 (R.captured_slow r);
  match R.recent r 1 with
  | [ rec_ ] -> check tstr "kind is sample" "sample" rec_.R.r_kind
  | _ -> Alcotest.fail "expected one record"

let test_recorder_jsonl () =
  let r = R.create ~capacity:4 ~threshold_s:0.0 () in
  ignore
    (R.observe r ~ts:1.5 ~trace_id:"0123456789abcdef0123456789abcdef"
       ~fingerprint:"deadbeef" ~query:"select ? from t" ~duration_s:0.25
       ~status:"error" ~error:"[binder] nope"
       ~sql:[ "SELECT a FROM t"; "DROP TABLE tmp" ]
       (span_of "query"));
  let jl = R.to_jsonl r in
  check tbool "fingerprint in jsonl" true (contains jl "\"fingerprint\":\"deadbeef\"");
  (* trace_id round-trips through the record and its JSONL rendering *)
  (match R.recent r 1 with
  | [ rec_ ] ->
      check tstr "trace_id stored" "0123456789abcdef0123456789abcdef"
        rec_.R.r_trace_id
  | _ -> Alcotest.fail "expected one record");
  check tbool "trace_id in jsonl" true
    (contains jl "\"trace_id\":\"0123456789abcdef0123456789abcdef\"");
  (* omitted trace_id renders as empty, still valid JSON *)
  ignore
    (R.observe r ~ts:2.0 ~fingerprint:"f2" ~query:"q2" ~duration_s:0.1
       ~status:"ok" ~error:"" ~sql:[] (span_of "query"));
  (match R.recent r 1 with
  | [ rec_ ] -> check tstr "default trace_id empty" "" rec_.R.r_trace_id
  | _ -> Alcotest.fail "expected one record");
  check tbool "sql array" true (contains jl "\"SELECT a FROM t\",\"DROP TABLE tmp\"");
  check tbool "error escaped in" true (contains jl "[binder] nope");
  check tbool "trace tree embedded" true (contains jl "\"trace\":{\"name\":\"query\"");
  check tbool "one line per record" true
    (String.length jl > 0 && jl.[String.length jl - 1] = '\n')

(* ------------------------------------------------------------------ *)
(* HTTP request parsing / rendering                                    *)
(* ------------------------------------------------------------------ *)

let test_http_parse () =
  (match H.parse_request "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n" with
  | Ok req ->
      check tstr "method" "GET" req.H.meth;
      check tstr "path" "/metrics" req.H.path;
      check tstr "host header" "x" (List.assoc "host" req.H.headers)
  | Error _ -> Alcotest.fail "well-formed request must parse");
  (match H.parse_request "GET /stats.json?limit=5 HTTP/1.1\r\n\r\n" with
  | Ok req ->
      check tstr "query split off path" "/stats.json" req.H.path;
      check tstr "query string kept" "limit=5" req.H.query
  | Error _ -> Alcotest.fail "query-string request must parse");
  (match
     H.parse_request
       "POST /reset HTTP/1.1\r\nContent-Length: 4\r\n\r\nwipe"
   with
  | Ok req -> check tstr "body read to content-length" "wipe" req.H.body
  | Error _ -> Alcotest.fail "POST with body must parse");
  (match H.parse_request "GET /metrics HTTP/1.1\r\nHost: x\r\n" with
  | Error `Incomplete -> ()
  | _ -> Alcotest.fail "unterminated headers are incomplete");
  (match H.parse_request "POST /r HTTP/1.1\r\nContent-Length: 10\r\n\r\nab" with
  | Error `Incomplete -> ()
  | _ -> Alcotest.fail "short body is incomplete");
  match H.parse_request "NONSENSE\r\n\r\n" with
  | Error (`Malformed _) -> ()
  | _ -> Alcotest.fail "bad request line is malformed"

let test_http_render_and_handle () =
  let handler req =
    match req.H.path with
    | "/boom" -> failwith "kaboom"
    | p -> H.text 200 ("you asked for " ^ p ^ "\n")
  in
  let resp = H.handle handler "GET /hello HTTP/1.1\r\n\r\n" in
  check tbool "status line" true (contains resp "HTTP/1.1 200 OK");
  check tbool "content-length present" true (contains resp "Content-Length: 21");
  check tbool "body present" true (contains resp "you asked for /hello");
  check tbool "connection close" true (contains resp "Connection: close");
  let bad = H.handle handler "garbage" in
  check tbool "malformed -> 400" true (contains bad "HTTP/1.1 400");
  let boom = H.handle handler "GET /boom HTTP/1.1\r\n\r\n" in
  check tbool "raising handler -> 500" true (contains boom "HTTP/1.1 500")

let test_http_hardening () =
  let handler _ = H.text 200 "ok\n" in
  (* an oversized request line is rejected before parsing *)
  let long_path = String.make (H.max_request_line + 10) 'a' in
  let resp =
    H.handle handler (Printf.sprintf "GET /%s HTTP/1.1\r\n\r\n" long_path)
  in
  check tbool "oversized request line -> 414" true
    (contains resp "HTTP/1.1 414 URI Too Long");
  check tbool "414 carries content-length" true (contains resp "Content-Length:");
  (* long-but-legal headers are fine; only the request line is capped *)
  let ok_resp =
    H.handle handler
      (Printf.sprintf "GET /x HTTP/1.1\r\nX-Pad: %s\r\n\r\n"
         (String.make (H.max_request_line + 10) 'b'))
  in
  check tbool "long header still 200" true (contains ok_resp "HTTP/1.1 200");
  (* extra headers render between the fixed ones *)
  let rendered =
    H.render_response
      (H.text ~headers:[ ("Allow", "GET, POST") ] 405 "no\n")
  in
  check tbool "extra header rendered" true (contains rendered "Allow: GET, POST\r\n");
  check tbool "status rendered" true (contains rendered "HTTP/1.1 405 Method Not Allowed");
  check tbool "content-length on 405" true (contains rendered "Content-Length: 3")

(* ------------------------------------------------------------------ *)
(* End to end: scripted workload over QIPC + admin plane               *)
(* ------------------------------------------------------------------ *)

let make_db () =
  let db = Db.create () in
  Db.load_table db
    (S.table ~order_col:"hq_ord" "trades"
       [
         S.column "hq_ord" Ty.TBigint;
         S.column "Symbol" Ty.TVarchar;
         S.column "Price" Ty.TDouble;
         S.column "Size" Ty.TBigint;
       ])
    (List.mapi
       (fun i (sym, px, sz) ->
         [| V.Int (Int64.of_int i); V.Str sym; V.Float px; V.Int (Int64.of_int sz) |])
       [ ("A", 10.0, 100); ("B", 20.0, 200); ("A", 11.0, 150) ]);
  db

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "query failed: %s" e

(* platform whose recorder captures everything (threshold 0) *)
let make_platform () =
  let recorder = R.create ~threshold_s:0.0 () in
  let obs = Obs.Ctx.create ~recorder () in
  P.create ~obs (make_db ())

let column_syms tb name =
  let col = QV.column_exn tb name in
  Array.init (QV.length col) (fun i ->
      match QV.index col i with
      | QV.Atom (QA.Sym s) -> s
      | v -> Alcotest.failf "expected sym, got %s" (Qvalue.Qprint.to_string v))

let column_longs tb name =
  let col = QV.column_exn tb name in
  Array.init (QV.length col) (fun i ->
      match QV.index col i with
      | QV.Atom (QA.Long n) -> Int64.to_int n
      | v -> Alcotest.failf "expected long, got %s" (Qvalue.Qprint.to_string v))

let test_hq_top_scripted_workload () =
  let p = make_platform () in
  let c = P.Client.connect p in
  (* shape 1: five calls across two literal variants (same fingerprint) *)
  for _ = 1 to 3 do
    ignore (ok (P.Client.query c "select Price from trades where Symbol=`A"))
  done;
  for _ = 1 to 2 do
    ignore (ok (P.Client.query c "select Price from trades where Symbol=`B"))
  done;
  (* shape 2: one call *)
  ignore (ok (P.Client.query c "select Size from trades"));
  let v = ok (P.Client.query c ".hq.top[5]") in
  match v with
  | QV.Table tb ->
      check tint "two fingerprints" 2 (QV.table_length tb);
      let fps = column_syms tb "fingerprint" in
      let queries = column_syms tb "query" in
      let calls = column_longs tb "calls" in
      let errors = column_longs tb "errors" in
      (* find the row for each shape by its normalized text *)
      let idx_of q =
        let rec go i =
          if i >= Array.length queries then
            Alcotest.failf "shape %s not in .hq.top" q
          else if queries.(i) = q then i
          else go (i + 1)
        in
        go 0
      in
      let shape1 = idx_of "select Price from trades where Symbol = `?" in
      let shape2 = idx_of "select Size from trades" in
      check tint "shape 1 counted exactly" 5 calls.(shape1);
      check tint "shape 2 counted exactly" 1 calls.(shape2);
      check tint "no errors" 0 errors.(shape1);
      check tstr "fingerprint matches the fingerprinter"
        (F.fingerprint "select Price from trades where Symbol=`XYZ")
        fps.(shape1);
      (* .hq.top[1] truncates to the heaviest shape *)
      (match ok (P.Client.query c ".hq.top[1]") with
      | QV.Table tb1 -> check tint "top[1] rows" 1 (QV.table_length tb1)
      | _ -> Alcotest.fail "expected table");
      (* admin queries themselves are not fingerprinted *)
      let qs = (P.obs p).Obs.Ctx.qstats in
      check tint "admin queries not in the store" 2 (QS.size qs)
  | v -> Alcotest.failf "expected a table, got %s" (Qvalue.Qprint.to_string v)

let test_hq_slow_capture () =
  let p = make_platform () in
  let c = P.Client.connect p in
  ignore (ok (P.Client.query c "select Price from trades where Symbol=`A"));
  let v = ok (P.Client.query c ".hq.slow[]") in
  match v with
  | QV.Table tb ->
      check tint "one capture" 1 (QV.table_length tb);
      let sqls = column_syms tb "sql" in
      let traces = column_syms tb "trace" in
      let status = column_syms tb "status" in
      check tbool "generated SQL captured" true (contains sqls.(0) "SELECT");
      check tbool "span tree has the query root" true
        (contains traces.(0) "\"name\":\"query\"");
      check tbool "span tree has pipeline stages" true
        (contains traces.(0) "\"execute\""
        && contains traces.(0) "\"parse\""
        && contains traces.(0) "\"pivot\"");
      check tstr "status ok" "ok" status.(0);
      (* errors are captured with their categorised text *)
      (match P.Client.query c "select nope from missing_table" with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "expected error");
      (match ok (P.Client.query c ".hq.slow[1]") with
      | QV.Table tb2 ->
          let st = column_syms tb2 "status" in
          check tstr "newest first is the error" "error" st.(0)
      | _ -> Alcotest.fail "expected table")
  | v -> Alcotest.failf "expected a table, got %s" (Qvalue.Qprint.to_string v)

let test_hq_stats_reset () =
  let p = make_platform () in
  let reg = (P.obs p).Obs.Ctx.registry in
  let c = P.Client.connect p in
  for _ = 1 to 4 do
    ignore (ok (P.Client.query c "select Price from trades"))
  done;
  let queries_total () =
    M.counter_value (M.counter reg "hq_queries_total")
  in
  check tint "counted before reset" 4 (queries_total ());
  check tbool "recorder holds captures before reset" true
    (Obs.Recorder.size (P.obs p).Obs.Ctx.recorder > 0);
  check tbool "export ring holds traces before reset" true
    (Obs.Export.size (P.obs p).Obs.Ctx.export > 0);
  check tbool "time-series ring sampled before reset" true
    (Obs.Timeseries.size (P.obs p).Obs.Ctx.timeseries > 0);
  (match ok (P.Client.query c ".hq.stats.reset") with
  | QV.Atom (QA.Sym "reset") -> ()
  | v -> Alcotest.failf "expected `reset, got %s" (Qvalue.Qprint.to_string v));
  check tint "counters zeroed" 0 (queries_total ());
  check tint "fingerprint store zeroed" 0 (QS.size (P.obs p).Obs.Ctx.qstats);
  check tbool "histograms zeroed" true
    (M.hist_count (M.histogram reg "hq_query_seconds") = 0);
  (* the reset is atomic across every plane: the flight-recorder ring,
     the trace-export ring and the time-series ring clear with it, so no
     plane reports pre-reset state next to another's post-reset state *)
  check tint "flight recorder cleared" 0
    (Obs.Recorder.size (P.obs p).Obs.Ctx.recorder);
  check tint "trace-export ring cleared" 0
    (Obs.Export.size (P.obs p).Obs.Ctx.export);
  check tint "time-series ring cleared" 0
    (Obs.Timeseries.size (P.obs p).Obs.Ctx.timeseries);
  (* the proxy keeps serving and counting after a reset *)
  ignore (ok (P.Client.query c "select Price from trades"));
  check tint "counting resumes from zero" 1 (queries_total ())

let test_admin_endpoint_routes () =
  let p = make_platform () in
  let c = P.Client.connect p in
  for _ = 1 to 3 do
    ignore (ok (P.Client.query c "select Price from trades"))
  done;
  let get path = H.handle (P.admin_handler p) (Printf.sprintf "GET %s HTTP/1.1\r\nHost: t\r\n\r\n" path) in
  (* /healthz *)
  let hz = get "/healthz" in
  check tbool "healthz 200" true (contains hz "HTTP/1.1 200");
  check tbool "healthz body" true (contains hz "ok");
  (* /metrics serves the same registry .hq.stats reports *)
  let metrics = get "/metrics" in
  check tbool "metrics 200" true (contains metrics "HTTP/1.1 200");
  check tbool "metrics counted queries" true (contains metrics "hq_queries_total 3");
  check tbool "metrics has stage buckets" true
    (contains metrics "hq_stage_seconds_bucket{stage=\"parse\",le=");
  check tbool "metrics merges fingerprints" true
    (contains metrics "hq_fingerprint_calls_total{fingerprint=");
  (* the in-band table agrees with the scrape *)
  (match ok (P.Client.query c ".hq.stats") with
  | QV.Table tb ->
      let metric_col = QV.column_exn tb "metric" in
      let value_col = QV.column_exn tb "value" in
      let rec lookup i =
        if i >= QV.length metric_col then Alcotest.fail "metric missing"
        else
          match (QV.index metric_col i, QV.index value_col i) with
          | QV.Atom (QA.Sym "hq_queries_total"), QV.Atom (QA.Float f) -> f
          | _ -> lookup (i + 1)
      in
      (* 3 workload queries; the .hq.stats call itself is admin-only *)
      check tbool "in-band and scrape agree" true (lookup 0 = 3.0)
  | _ -> Alcotest.fail "expected table");
  (* /stats.json *)
  let sj = get "/stats.json" in
  check tbool "stats.json 200" true (contains sj "HTTP/1.1 200");
  check tbool "stats.json metrics array" true (contains sj "\"metrics\":[");
  check tbool "stats.json fingerprints" true (contains sj "\"fingerprints\":[");
  check tbool "stats.json has calls" true (contains sj "\"calls\":3");
  (* /slow.json (threshold 0: everything captured) *)
  let slj = get "/slow.json" in
  check tbool "slow.json 200" true (contains slj "HTTP/1.1 200");
  check tbool "slow.json ndjson" true (contains slj "application/x-ndjson");
  check tbool "slow.json has traces" true (contains slj "\"trace\":{");
  (* POST /reset *)
  let reset =
    H.handle (P.admin_handler p) "POST /reset HTTP/1.1\r\nContent-Length: 0\r\n\r\n"
  in
  check tbool "reset 200" true (contains reset "HTTP/1.1 200");
  check tbool "reset acknowledges" true (contains reset "\"status\":\"reset\"");
  let after = get "/metrics" in
  check tbool "counters zeroed over HTTP" true
    (contains after "hq_queries_total 0");
  (* routing edges *)
  let not_found = get "/nope" in
  check tbool "404 for unknown path" true (contains not_found "HTTP/1.1 404");
  check tbool "404 carries content-length" true
    (contains not_found "Content-Length:");
  let post_metrics =
    H.handle (P.admin_handler p) "POST /metrics HTTP/1.1\r\nContent-Length: 0\r\n\r\n"
  in
  check tbool "405 for POST /metrics" true (contains post_metrics "HTTP/1.1 405");
  check tbool "405 names the allowed method" true
    (contains post_metrics "Allow: GET");
  let post_traces =
    H.handle (P.admin_handler p)
      "POST /traces.json HTTP/1.1\r\nContent-Length: 0\r\n\r\n"
  in
  check tbool "405 for POST /traces.json" true (contains post_traces "HTTP/1.1 405");
  check tbool "traces 405 allows GET" true (contains post_traces "Allow: GET");
  let get_reset = get "/reset" in
  check tbool "405 for GET /reset" true (contains get_reset "HTTP/1.1 405");
  check tbool "reset 405 allows POST" true (contains get_reset "Allow: POST")

(* the cluster observability plane over HTTP: hardened headers, HELP/
   TYPE on per-shard families, windowed time series, and the SLO-aware
   healthz degrading to 503 under a latency spike and recovering *)
let test_cluster_observability_http () =
  let obs = Obs.Ctx.create () in
  let p = P.create ~obs ~shards:2 (make_db ()) in
  Fun.protect ~finally:(fun () -> P.shutdown p) @@ fun () ->
  let c = P.Client.connect p in
  (* interval 0: every query's in-band tick snapshots the ring, so 100
     queries produce plenty of windows *)
  Obs.Timeseries.set_interval obs.Obs.Ctx.timeseries 0.0;
  for _ = 1 to 100 do
    ignore (ok (P.Client.query c "select mx:max Price by Symbol from trades"))
  done;
  let get path =
    H.handle (P.admin_handler p)
      (Printf.sprintf "GET %s HTTP/1.1\r\nHost: t\r\n\r\n" path)
  in
  (* every admin response carries the hardened headers *)
  let metrics = get "/metrics" in
  check tbool "Cache-Control: no-store" true
    (contains metrics "Cache-Control: no-store");
  check tbool "Server: hyperq" true (contains metrics "Server: hyperq");
  (* per-shard families carry HELP/TYPE headers even though the shard
     series are registered with labels (and some without help text) *)
  check tbool "# TYPE for the per-shard histogram family" true
    (contains metrics "# TYPE hq_shard_dispatch_seconds histogram");
  check tbool "# HELP for the per-shard histogram family" true
    (contains metrics "# HELP hq_shard_dispatch_seconds");
  check tbool "# TYPE for the shard wire counters" true
    (contains metrics "# TYPE hq_pgwire_bytes_in counter");
  check tbool "per-shard series labelled" true
    (contains metrics "hq_shard_dispatch_seconds_bucket{shard=\"0\"");
  check tbool "pool gauges exported" true
    (contains metrics "hq_shard_pool_workers");
  (* /timeseries.json: >= 2 windows, non-zero qps, finite p99 *)
  let ws = Obs.Timeseries.windows obs.Obs.Ctx.timeseries in
  let live =
    List.filter
      (fun w ->
        w.Obs.Timeseries.w_qps > 0.0
        && Float.is_finite w.Obs.Timeseries.w_p99_s)
      ws
  in
  check tbool "at least two live windows" true (List.length live >= 2);
  let tsj = get "/timeseries.json" in
  check tbool "timeseries.json 200" true (contains tsj "HTTP/1.1 200");
  check tbool "timeseries.json has windows" true (contains tsj "\"windows\":[");
  check tbool "timeseries.json reports queries" true
    (contains tsj "\"queries\":1");
  (* ?window= filters to the given horizon; a bogus value is ignored *)
  let narrow = get "/timeseries.json?window=30s" in
  check tbool "windowed query 200" true (contains narrow "HTTP/1.1 200");
  let bogus = get "/timeseries.json?window=bogus" in
  check tbool "bogus window ignored" true (contains bogus "HTTP/1.1 200");
  (* healthz: healthy without objectives... *)
  check tbool "healthz healthy" true (contains (get "/healthz") "HTTP/1.1 200");
  (* ...then a latency SLO no real query can meet: everything burns *)
  (match Obs.Slo.parse_spec "p99<1us,fast=50ms,slow=50ms" with
  | Ok cfg -> Obs.Slo.configure obs.Obs.Ctx.slo cfg
  | Error m -> Alcotest.failf "spec: %s" m);
  ignore (ok (P.Client.query c "select mx:max Price by Symbol from trades"));
  ignore (ok (P.Client.query c "select mx:max Price by Symbol from trades"));
  let hz = get "/healthz" in
  check tbool "healthz degrades to 503" true (contains hz "HTTP/1.1 503");
  check tbool "503 body carries the burn reason" true
    (contains hz "\"healthy\":false" && contains hz "\"burning\":true");
  check tbool "503 names the objective" true (contains hz "p99<1us");
  let sj = get "/slo.json" in
  check tbool "slo.json reports the burn" true
    (contains sj "\"healthy\":false");
  (* recovery: the spike ages out of the 50ms windows *)
  Unix.sleepf 0.06;
  ignore (Obs.Timeseries.tick obs.Obs.Ctx.timeseries);
  Unix.sleepf 0.06;
  let hz2 = get "/healthz" in
  check tbool "healthz recovers" true (contains hz2 "HTTP/1.1 200");
  (* in-band .hq.timeseries mirrors the HTTP plane *)
  (match ok (P.Client.query c ".hq.timeseries[5]") with
  | QV.Table tb ->
      check tbool "bracket arg bounds rows" true (QV.table_length tb <= 5);
      check tbool "has rows" true (QV.table_length tb > 0)
  | v -> Alcotest.failf "expected a table, got %s" (Qvalue.Qprint.to_string v));
  P.Client.close c

let test_default_buckets_log_scale () =
  let b = M.default_buckets in
  check tbool "ascending" true
    (Array.for_all (fun x -> x > 0.0) b
    &&
    let rec mono i = i >= Array.length b - 1 || (b.(i) < b.(i + 1) && mono (i + 1)) in
    mono 0);
  check tbool "sub-microsecond floor" true (b.(0) <= 1e-6);
  check tbool "spans to 10s" true (b.(Array.length b - 1) = 10.0);
  (* fast parse stages (1-10us) spread over several buckets *)
  let in_range = Array.to_list b |> List.filter (fun x -> x >= 1e-6 && x <= 1e-5) in
  check tbool "multiple buckets under 10us" true (List.length in_range >= 3);
  (* generator respects bounds *)
  let g = M.log_buckets ~lo:1e-3 ~hi:1.0 () in
  check tbool "generator bounds" true (g.(0) = 1e-3 && g.(Array.length g - 1) = 1.0)

let () =
  Alcotest.run "introspection"
    [
      ( "fingerprint",
        [
          Alcotest.test_case "numeric literals" `Quick test_fp_numeric_literals;
          Alcotest.test_case "string/symbol literals" `Quick
            test_fp_string_and_symbol_literals;
          Alcotest.test_case "whitespace and comments" `Quick
            test_fp_whitespace_and_comments;
          Alcotest.test_case "lambda bodies" `Quick test_fp_lambda_bodies;
          Alcotest.test_case "different shapes differ" `Quick
            test_fp_shapes_differ;
          Alcotest.test_case "lexer fallback" `Quick test_fp_lexer_fallback;
          Alcotest.test_case "normalized text" `Quick test_fp_normalized_text;
        ] );
      ( "qstats",
        [
          Alcotest.test_case "accumulation" `Quick test_qstats_accumulation;
          Alcotest.test_case "LRU eviction" `Quick test_qstats_lru_eviction;
          Alcotest.test_case "percentiles and reset" `Quick
            test_qstats_percentile_and_reset;
          Alcotest.test_case "prometheus and json" `Quick
            test_qstats_prometheus_and_json;
        ] );
      ( "recorder",
        [
          Alcotest.test_case "threshold and ring bound" `Quick
            test_recorder_threshold_and_bound;
          Alcotest.test_case "tail sampling" `Quick test_recorder_tail_sampling;
          Alcotest.test_case "jsonl dump" `Quick test_recorder_jsonl;
        ] );
      ( "http",
        [
          Alcotest.test_case "request parsing" `Quick test_http_parse;
          Alcotest.test_case "render and handle" `Quick
            test_http_render_and_handle;
          Alcotest.test_case "hardening (414, Allow, lengths)" `Quick
            test_http_hardening;
        ] );
      ( "admin-plane",
        [
          Alcotest.test_case ".hq.top scripted workload" `Quick
            test_hq_top_scripted_workload;
          Alcotest.test_case ".hq.slow capture" `Quick test_hq_slow_capture;
          Alcotest.test_case ".hq.stats.reset" `Quick test_hq_stats_reset;
          Alcotest.test_case "HTTP admin endpoint routes" `Quick
            test_admin_endpoint_routes;
          Alcotest.test_case "cluster observability plane" `Quick
            test_cluster_observability_http;
          Alcotest.test_case "log-scale default buckets" `Quick
            test_default_buckets_log_scale;
        ] );
    ]
