(* Tests for the Q interpreter (lib/kdb) — the kdb+ reference substrate. *)

open Qvalue

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int
let tstr = Alcotest.string

(* evaluate a Q program in a fresh environment *)
let q src = Kdb.Interp.eval_string (Kdb.Interp.create ()) src

(* evaluate against an env preloaded with the trades/quotes fixture *)
let fixture () =
  let env = Kdb.Interp.create () in
  let trades =
    Value.table
      [
        ("Symbol", Value.syms [| "A"; "B"; "A"; "B"; "A" |]);
        ("Time", Value.Vector (Qtype.Time, [| Atom.Time 1000; Atom.Time 2000; Atom.Time 3000; Atom.Time 4000; Atom.Time 5000 |]));
        ("Price", Value.floats [| 10.0; 20.0; 11.0; 21.0; 12.0 |]);
        ("Size", Value.longs [| 100; 200; 150; 250; 300 |]);
      ]
  in
  let quotes =
    Value.table
      [
        ("Symbol", Value.syms [| "A"; "B"; "A"; "B" |]);
        ("Time", Value.Vector (Qtype.Time, [| Atom.Time 500; Atom.Time 1500; Atom.Time 2500; Atom.Time 3500 |]));
        ("Bid", Value.floats [| 9.9; 19.9; 10.9; 20.9 |]);
        ("Ask", Value.floats [| 10.1; 20.1; 11.1; 21.1 |]);
      ]
  in
  Kdb.Interp.set_global env "trades" (Kdb.Interp.V (Value.Table trades));
  Kdb.Interp.set_global env "quotes" (Kdb.Interp.V (Value.Table quotes));
  env

let qf env src = Kdb.Interp.eval_string env src

let expect_long src expected =
  match q src with
  | Value.Atom (Atom.Long i) -> check tint src expected (Int64.to_int i)
  | v -> Alcotest.failf "%s: expected long, got %s" src (Qprint.to_string v)

let expect_float src expected =
  match q src with
  | Value.Atom (Atom.Float f) -> check (Alcotest.float 1e-9) src expected f
  | v -> Alcotest.failf "%s: expected float, got %s" src (Qprint.to_string v)

let expect_value src expected =
  let v = q src in
  if not (Value.equal v expected) then
    Alcotest.failf "%s: got %s, expected %s" src (Qprint.to_string v)
      (Qprint.to_string expected)

(* ------------------------------------------------------------------ *)
(* Scalars and vectors                                                 *)
(* ------------------------------------------------------------------ *)

let test_arithmetic () =
  expect_long "1+2" 3;
  expect_long "2*3+4" 14 (* right-to-left: 2*(3+4) *);
  expect_float "3%2" 1.5;
  expect_long "7 mod 3" 1;
  expect_long "7 div 2" 3;
  expect_value "1 2 3+10" (Value.longs [| 11; 12; 13 |]);
  expect_value "1 2 3+10 20 30" (Value.longs [| 11; 22; 33 |]);
  expect_value "neg 1 2" (Value.longs [| -1; -2 |])

let test_comparison_2vl () =
  expect_value "1=1" (Value.bool true);
  expect_value "0N=0N" (Value.bool true) (* Q nulls compare equal *);
  expect_value "0n=0n" (Value.bool true);
  expect_value "1<2" (Value.bool true);
  expect_value "1 2 3=1 5 3" (Value.bools [| true; false; true |])

let test_list_verbs () =
  expect_long "count til 10" 10;
  expect_value "reverse 1 2 3" (Value.longs [| 3; 2; 1 |]);
  expect_value "distinct 1 2 1 3" (Value.longs [| 1; 2; 3 |]);
  expect_value "where 101b" (Value.longs [| 0; 2 |]);
  expect_value "2#til 5" (Value.longs [| 0; 1 |]);
  expect_value "2_til 5" (Value.longs [| 2; 3; 4 |]);
  expect_value "1 2,3 4" (Value.longs [| 1; 2; 3; 4 |]);
  expect_value "first 5 6 7" (Value.int 5);
  expect_value "last 5 6 7" (Value.int 7);
  expect_value "asc 3 1 2" (Value.longs [| 1; 2; 3 |]);
  expect_value "til 3" (Value.longs [| 0; 1; 2 |])

let test_aggregates () =
  expect_long "sum 1 2 3" 6;
  expect_float "avg 1 2 3 4" 2.5;
  expect_long "max 3 1 4" 4;
  expect_long "min 3 1 4" 1;
  expect_float "med 1 2 3 4 5" 3.0;
  (* nulls are skipped by aggregates *)
  expect_long "sum 1 0N 3" 4;
  expect_float "avg 2 0N 4" 3.0

let test_uniform_verbs () =
  expect_value "sums 1 2 3" (Value.longs [| 1; 3; 6 |]);
  expect_value "deltas 1 4 9" (Value.longs [| 1; 3; 5 |]);
  expect_value "maxs 1 3 2" (Value.longs [| 1; 3; 3 |]);
  expect_value "mins 3 1 2" (Value.longs [| 3; 1; 1 |]);
  expect_value "fills 1 0N 0N 2 0N" (Value.longs [| 1; 1; 1; 2; 2 |])

let test_shift_verbs () =
  expect_value "prev 1 2 3" (Value.vector_of_atoms [| Atom.Null Qtype.Long; Atom.Long 1L; Atom.Long 2L |]);
  expect_value "next 1 2 3" (Value.vector_of_atoms [| Atom.Long 2L; Atom.Long 3L; Atom.Null Qtype.Long |]);
  expect_value "differ 1 1 2 2 3" (Value.bools [| true; false; true; false; true |]);
  expect_value "rank 30 10 20" (Value.longs [| 2; 0; 1 |])

let test_sublist () =
  expect_value "3 sublist til 10" (Value.longs [| 0; 1; 2 |]);
  (* unlike take, sublist never cycles *)
  expect_value "5 sublist til 3" (Value.longs [| 0; 1; 2 |]);
  expect_value "-2 sublist til 5" (Value.longs [| 3; 4 |]);
  expect_value "(2;3) sublist til 10" (Value.longs [| 2; 3; 4 |])

let test_xcols () =
  let env = fixture () in
  match qf env "`Price`Symbol xcols trades" with
  | Value.Table t ->
      check tstr "first col" "Price" t.Value.cols.(0);
      check tstr "second col" "Symbol" t.Value.cols.(1)
  | v -> Alcotest.failf "expected table, got %s" (Qprint.to_string v)

let test_membership () =
  expect_value "2 in 1 2 3" (Value.bool true);
  expect_value "5 in 1 2 3" (Value.bool false);
  expect_value "1 5 in 1 2 3" (Value.bools [| true; false |]);
  expect_value "3 within 1 5" (Value.bool true);
  expect_value "`abc like \"a*\"" (Value.bool true);
  expect_value "`abc like \"a?c\"" (Value.bool true);
  expect_value "`abc like \"b*\"" (Value.bool false)

let test_fill_and_null () =
  expect_value "0^1 0N 3" (Value.longs [| 1; 0; 3 |]);
  expect_value "null 1 0N 3" (Value.bools [| false; true; false |])

let test_cast () =
  expect_value "`float$1 2" (Value.floats [| 1.0; 2.0 |]);
  expect_value "`long$2.7" (Value.int 2);
  expect_value "`symbol$\"abc\"" (Value.sym "abc")

let test_dict () =
  expect_value "(`a`b!1 2)[`b]" (Value.int 2);
  (match q "`a`b!1 2" with
  | Value.Dict _ -> ()
  | v -> Alcotest.failf "expected dict, got %s" (Qprint.to_string v));
  expect_value "key `a`b!1 2" (Value.syms [| "a"; "b" |]);
  expect_value "value `a`b!1 2" (Value.longs [| 1; 2 |])

(* ------------------------------------------------------------------ *)
(* Functions, adverbs and control flow                                 *)
(* ------------------------------------------------------------------ *)

let test_lambda () =
  expect_long "{[a;b] a+b}[3;4]" 7;
  expect_long "f:{[a;b] a*b}; f[3;4]" 12;
  (* implicit parameters *)
  expect_long "{x+y}[3;4]" 7;
  (* return statement *)
  expect_long "{[x] :x+1; 99}[5]" 6

let test_locals_do_not_leak () =
  let env = Kdb.Interp.create () in
  ignore (qf env "f:{[x] loc:x+1; loc}");
  ignore (qf env "f[5]");
  (match Kdb.Interp.eval (Kdb.Interp.create ()) (Qlang.Parser.parse_expression "1") with
  | _ -> ());
  (* loc must not exist globally *)
  match qf env "loc" with
  | exception _ -> ()
  | v -> Alcotest.failf "local leaked: %s" (Qprint.to_string v)

let test_global_assign_in_function () =
  let env = Kdb.Interp.create () in
  ignore (qf env "f:{[x] g::x+1; x}");
  ignore (qf env "f[5]");
  match qf env "g" with
  | Value.Atom (Atom.Long 6L) -> ()
  | v -> Alcotest.failf "expected 6, got %s" (Qprint.to_string v)

let test_projections () =
  (* partial application with elided slots *)
  expect_long "g:+[;3]; g 4" 7;
  expect_long "h:{x-y}[10;]; h 3" 7;
  expect_long "{x+y+z}[1;;3][2]" 6;
  (* projections are values: pass them to adverbs *)
  expect_value "+[10;]'1 2 3" (Value.longs [| 11; 12; 13 |])

let test_adverbs () =
  expect_long "+/1 2 3 4" 10;
  expect_value "+\\1 2 3" (Value.longs [| 1; 3; 6 |]);
  expect_value "{x*x}'1 2 3" (Value.longs [| 1; 4; 9 |]);
  expect_value "1 2+'10 20" (Value.longs [| 11; 22 |]);
  expect_value "1 2+\\:10" (Value.longs [| 11; 12 |]);
  expect_value "1+/:10 20" (Value.longs [| 11; 21 |]);
  expect_value "-':1 3 6" (Value.longs [| 1; 2; 3 |]) (* each-prior = deltas *);
  expect_long "0+/1 2 3" 6 (* seeded fold *)

let test_cond () =
  expect_long "$[1b;10;20]" 10;
  expect_long "$[0b;10;20]" 20;
  expect_long "$[0b;10;1b;30;20]" 30

let test_control () =
  expect_long "s:0; do[5;s:s+1]; s" 5;
  expect_long "s:0; i:0; while[i<4;s:s+i;i:i+1]; s" 6;
  expect_long "x:1; if[x>0;x:42]; x" 42

let test_string_ops () =
  expect_value "string `abc" (Value.string_ "abc");
  expect_value "upper `abc" (Value.sym "ABC");
  expect_value "\",\" sv (\"a\";\"b\")" (Value.string_ "a,b")

let test_value_eval () =
  expect_long "value \"1+2\"" 3

let test_errors_are_clean () =
  (match q "1+`sym" with
  | exception Kdb.Error.Q_error _ -> ()
  | exception Atom.Type_error _ -> ()
  | v -> Alcotest.failf "expected type error, got %s" (Qprint.to_string v));
  match q "undefined_variable_xyz" with
  | exception Kdb.Error.Q_error { tag = "value"; _ } -> ()
  | exception _ -> Alcotest.fail "wrong error kind"
  | v -> Alcotest.failf "expected value error, got %s" (Qprint.to_string v)

(* ------------------------------------------------------------------ *)
(* q-sql                                                               *)
(* ------------------------------------------------------------------ *)

let test_select_where () =
  let env = fixture () in
  match qf env "select Price from trades where Symbol=`A" with
  | Value.Table t ->
      check tint "3 A-trades" 3 (Value.table_length t);
      check tbool "prices" true
        (Value.equal
           (Value.column_exn t "Price")
           (Value.floats [| 10.0; 11.0; 12.0 |]))
  | v -> Alcotest.failf "expected table, got %s" (Qprint.to_string v)

let test_select_computed_col () =
  let env = fixture () in
  match qf env "select notional:Price*Size from trades where Symbol=`B" with
  | Value.Table t ->
      check tbool "notional" true
        (Value.equal
           (Value.column_exn t "notional")
           (Value.floats [| 4000.0; 5250.0 |]))
  | v -> Alcotest.failf "expected table, got %s" (Qprint.to_string v)

let test_select_by () =
  let env = fixture () in
  match qf env "select mx:max Price, n:count Price by Symbol from trades" with
  | Value.KTable (k, v) ->
      check tbool "keys sorted" true
        (Value.equal (Value.column_exn k "Symbol") (Value.syms [| "A"; "B" |]));
      check tbool "max per group" true
        (Value.equal (Value.column_exn v "mx") (Value.floats [| 12.0; 21.0 |]));
      check tbool "count per group" true
        (Value.equal (Value.column_exn v "n") (Value.longs [| 3; 2 |]))
  | v -> Alcotest.failf "expected keyed table, got %s" (Qprint.to_string v)

let test_exec () =
  let env = fixture () in
  (match qf env "exec Price from trades where Symbol=`A" with
  | Value.Vector (Qtype.Float, _) as v ->
      check tbool "exec vector" true
        (Value.equal v (Value.floats [| 10.0; 11.0; 12.0 |]))
  | v -> Alcotest.failf "expected vector, got %s" (Qprint.to_string v));
  match qf env "exec max Price by Symbol from trades" with
  | Value.Dict _ -> ()
  | v -> Alcotest.failf "expected dict, got %s" (Qprint.to_string v)

let test_sequential_where () =
  (* the second where clause sees only rows that pass the first *)
  let env = fixture () in
  match qf env "select Price from trades where Symbol=`A, Price>10.5" with
  | Value.Table t -> check tint "2 rows" 2 (Value.table_length t)
  | v -> Alcotest.failf "expected table, got %s" (Qprint.to_string v)

let test_update_is_not_persistent () =
  let env = fixture () in
  (match qf env "update Price:2*Price from trades where Symbol=`A" with
  | Value.Table t ->
      check tbool "updated rows" true
        (Value.equal
           (Value.column_exn t "Price")
           (Value.floats [| 20.0; 20.0; 22.0; 21.0; 24.0 |]))
  | v -> Alcotest.failf "expected table, got %s" (Qprint.to_string v));
  (* the stored table is unchanged (paper Section 2.2) *)
  match qf env "exec Price from trades where Symbol=`A" with
  | v -> check tbool "original intact" true
      (Value.equal v (Value.floats [| 10.0; 11.0; 12.0 |]))

let test_update_by () =
  let env = fixture () in
  match qf env "update mx:max Price by Symbol from trades" with
  | Value.Table t ->
      check tbool "group max spread back" true
        (Value.equal
           (Value.column_exn t "mx")
           (Value.floats [| 12.0; 21.0; 12.0; 21.0; 12.0 |]))
  | v -> Alcotest.failf "expected table, got %s" (Qprint.to_string v)

let test_delete_rows_and_cols () =
  let env = fixture () in
  (match qf env "delete from trades where Symbol=`A" with
  | Value.Table t -> check tint "2 rows left" 2 (Value.table_length t)
  | v -> Alcotest.failf "expected table, got %s" (Qprint.to_string v));
  match qf env "delete Size from trades" with
  | Value.Table t ->
      check tbool "Size gone" false (Value.has_column t "Size")
  | v -> Alcotest.failf "expected table, got %s" (Qprint.to_string v)

let test_fby () =
  let env = fixture () in
  (* trades at the max price of their symbol *)
  match qf env "select from trades where Price=(max;Price) fby Symbol" with
  | Value.Table t ->
      check tint "one max per symbol" 2 (Value.table_length t);
      check tbool "max prices" true
        (Value.equal
           (Value.column_exn t "Price")
           (Value.floats [| 21.0; 12.0 |]))
  | v -> Alcotest.failf "expected table, got %s" (Qprint.to_string v)

let test_insert_upsert () =
  let env = Kdb.Interp.create () in
  ignore (qf env "t:([] a:1 2; b:`x`y)");
  ignore (qf env "`t insert ([] a:3 4; b:`z`w)");
  (match qf env "count t" with
  | Value.Atom (Atom.Long 4L) -> ()
  | v -> Alcotest.failf "expected 4 rows, got %s" (Qprint.to_string v));
  match qf env "exec a from t" with
  | v ->
      check tbool "appended in order" true
        (Value.equal v (Value.longs [| 1; 2; 3; 4 |]))

let test_qprint_rendering () =
  let t =
    Value.Table
      (Value.table
         [ ("sym", Value.syms [| "a" |]); ("px", Value.floats [| 1.5 |]) ])
  in
  let s = Qprint.to_string t in
  check tbool "header present" true
    (let re = Str.regexp_string "sym px" in
     try ignore (Str.search_forward re s 0); true with Not_found -> false);
  check tbool "row present" true
    (let re = Str.regexp_string "`a" in
     try ignore (Str.search_forward re s 0); true with Not_found -> false);
  (* keyed tables render with the key bar *)
  let kt = Value.xkey [ "sym" ] (Value.table [ ("sym", Value.syms [| "a" |]); ("v", Value.longs [| 1 |]) ]) in
  check tbool "key separator" true
    (let re = Str.regexp_string "| " in
     try ignore (Str.search_forward re (Qprint.to_string kt) 0); true
     with Not_found -> false)

let test_table_literal_eval () =
  match q "([] a:1 2 3; b:`x`y`z)" with
  | Value.Table t ->
      check tint "3 rows" 3 (Value.table_length t);
      check (Alcotest.array tstr) "cols" [| "a"; "b" |] t.Value.cols
  | v -> Alcotest.failf "expected table, got %s" (Qprint.to_string v)

(* ------------------------------------------------------------------ *)
(* Joins                                                               *)
(* ------------------------------------------------------------------ *)

let test_aj_paper_example () =
  (* Example 2: aj[`Symbol`Time; trades; quotes] *)
  let env = fixture () in
  match qf env "aj[`Symbol`Time; trades; quotes]" with
  | Value.Table t ->
      check tint "row per trade" 5 (Value.table_length t);
      (* trade A@1000 sees quote A@500 (bid 9.9); A@3000 sees A@2500 (10.9);
         B@2000 sees B@1500 (19.9); B@4000 sees B@3500 (20.9) *)
      check tbool "prevailing bids" true
        (Value.equal
           (Value.column_exn t "Bid")
           (Value.floats [| 9.9; 19.9; 10.9; 20.9; 10.9 |]))
  | v -> Alcotest.failf "expected table, got %s" (Qprint.to_string v)

let test_aj_no_match_is_null () =
  let env = Kdb.Interp.create () in
  Kdb.Interp.set_global env "t1"
    (Kdb.Interp.V
       (Value.Table
          (Value.table
             [
               ("s", Value.syms [| "X" |]);
               ("t", Value.longs [| 100 |]);
             ])));
  Kdb.Interp.set_global env "t2"
    (Kdb.Interp.V
       (Value.Table
          (Value.table
             [
               ("s", Value.syms [| "Y" |]);
               ("t", Value.longs [| 50 |]);
               ("v", Value.floats [| 1.0 |]);
             ])));
  match qf env "aj[`s`t; t1; t2]" with
  | Value.Table t -> (
      match Value.index (Value.column_exn t "v") 0 with
      | Value.Atom a -> check tbool "null when no match" true (Atom.is_null a)
      | v -> Alcotest.failf "expected atom, got %s" (Qprint.to_string v))
  | v -> Alcotest.failf "expected table, got %s" (Qprint.to_string v)

let test_lj () =
  let env = Kdb.Interp.create () in
  ignore
    (qf env
       "ref:([s:`a`b] nm:`alpha`beta); t:([] s:`a`b`a; v:1 2 3); t lj ref");
  match qf env "t lj ref" with
  | Value.Table t ->
      check tbool "joined names" true
        (Value.equal
           (Value.column_exn t "nm")
           (Value.syms [| "alpha"; "beta"; "alpha" |]))
  | v -> Alcotest.failf "expected table, got %s" (Qprint.to_string v)

let test_ij () =
  let env = Kdb.Interp.create () in
  ignore (qf env "ref:([s:`a] nm:`alpha); t:([] s:`a`b`a; v:1 2 3)");
  match qf env "t ij ref" with
  | Value.Table t -> check tint "only matching rows" 2 (Value.table_length t)
  | v -> Alcotest.failf "expected table, got %s" (Qprint.to_string v)

let test_uj () =
  let env = Kdb.Interp.create () in
  ignore (qf env "t1:([] a:1 2); t2:([] a:3 4; b:`x`y)");
  match qf env "t1 uj t2" with
  | Value.Table t ->
      check tint "4 rows" 4 (Value.table_length t);
      check tbool "b null-padded" true
        (match Value.index (Value.column_exn t "b") 0 with
        | Value.Atom a -> Atom.is_null a
        | _ -> false)
  | v -> Alcotest.failf "expected table, got %s" (Qprint.to_string v)

let test_ej () =
  let env = Kdb.Interp.create () in
  ignore (qf env "t1:([] s:`a`b); t2:([] s:`a`a`b; v:1 2 3)");
  match qf env "ej[`s;t1;t2]" with
  | Value.Table t -> check tint "multiplicity preserved" 3 (Value.table_length t)
  | v -> Alcotest.failf "expected table, got %s" (Qprint.to_string v)

(* ------------------------------------------------------------------ *)
(* Server loop                                                         *)
(* ------------------------------------------------------------------ *)

let test_server_serial_execution () =
  let srv = Kdb.Server.create () in
  let order = ref [] in
  Kdb.Server.submit srv ~client:1 ~source:"x::1" ~callback:(fun _ ->
      order := 1 :: !order);
  Kdb.Server.submit srv ~client:2 ~source:"x::x+10" ~callback:(fun _ ->
      order := 2 :: !order);
  Kdb.Server.submit srv ~client:1 ~source:"x" ~callback:(fun r ->
      order := 3 :: !order;
      match r with
      | Ok (Value.Atom (Atom.Long 11L)) -> ()
      | Ok v -> Alcotest.failf "expected 11, got %s" (Qprint.to_string v)
      | Error e -> Alcotest.fail e);
  Kdb.Server.run_pending srv;
  check (Alcotest.list tint) "strict arrival order" [ 1; 2; 3 ]
    (List.rev !order);
  check tint "executed" 3 (Kdb.Server.executed_count srv)

let test_server_error_isolation () =
  let srv = Kdb.Server.create () in
  (match Kdb.Server.query srv ~client:1 "1+`oops" with
  | Error _ -> ()
  | Ok v -> Alcotest.failf "expected error, got %s" (Qprint.to_string v));
  (* the server survives and keeps serving *)
  match Kdb.Server.query srv ~client:1 "2+2" with
  | Ok (Value.Atom (Atom.Long 4L)) -> ()
  | Ok v -> Alcotest.failf "expected 4, got %s" (Qprint.to_string v)
  | Error e -> Alcotest.fail e

let test_globals_shared_across_clients () =
  (* paper Section 3.2.3: globals can be redefined by other clients *)
  let srv = Kdb.Server.create () in
  ignore (Kdb.Server.query srv ~client:1 "f:{[x] x+1}");
  ignore (Kdb.Server.query srv ~client:2 "f:{[x] x+100}");
  match Kdb.Server.query srv ~client:1 "f[1]" with
  | Ok (Value.Atom (Atom.Long 101L)) -> ()
  | Ok v -> Alcotest.failf "expected 101, got %s" (Qprint.to_string v)
  | Error e -> Alcotest.fail e

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_sum_matches_fold =
  QCheck.Test.make ~count:200 ~name:"sum xs = +/xs"
    QCheck.(list_of_size (Gen.int_range 1 20) (int_range (-100) 100))
    (fun xs ->
      xs = []
      ||
      let src = String.concat " " (List.map string_of_int xs) in
      Value.equal (q ("sum " ^ src)) (q ("+/" ^ src)))

let prop_reverse_reverse =
  QCheck.Test.make ~count:100 ~name:"reverse reverse xs = xs"
    QCheck.(list_of_size (Gen.int_range 1 20) (int_range 0 100))
    (fun xs ->
      xs = []
      ||
      let src = String.concat " " (List.map string_of_int xs) in
      Value.equal (q ("reverse reverse " ^ src)) (q src))

let prop_take_then_count =
  QCheck.Test.make ~count:100 ~name:"count n#xs = n"
    QCheck.(pair (int_range 1 50) (list_of_size (Gen.int_range 1 10) (int_range 0 9)))
    (fun (n, xs) ->
      n <= 0 || xs = []
      ||
      let src = String.concat " " (List.map string_of_int xs) in
      Value.equal (q (Printf.sprintf "count %d#%s" n src)) (Value.int n))

let props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_sum_matches_fold; prop_reverse_reverse; prop_take_then_count ]

let () =
  Alcotest.run "kdb"
    [
      ( "scalars",
        [
          Alcotest.test_case "arithmetic" `Quick test_arithmetic;
          Alcotest.test_case "comparison 2VL" `Quick test_comparison_2vl;
          Alcotest.test_case "list verbs" `Quick test_list_verbs;
          Alcotest.test_case "aggregates" `Quick test_aggregates;
          Alcotest.test_case "uniform verbs" `Quick test_uniform_verbs;
          Alcotest.test_case "shift verbs" `Quick test_shift_verbs;
          Alcotest.test_case "sublist" `Quick test_sublist;
          Alcotest.test_case "xcols" `Quick test_xcols;
          Alcotest.test_case "membership" `Quick test_membership;
          Alcotest.test_case "fill and null" `Quick test_fill_and_null;
          Alcotest.test_case "cast" `Quick test_cast;
          Alcotest.test_case "dict" `Quick test_dict;
        ] );
      ( "functions",
        [
          Alcotest.test_case "lambda" `Quick test_lambda;
          Alcotest.test_case "locals don't leak" `Quick test_locals_do_not_leak;
          Alcotest.test_case "global assign in function" `Quick
            test_global_assign_in_function;
          Alcotest.test_case "projections" `Quick test_projections;
          Alcotest.test_case "adverbs" `Quick test_adverbs;
          Alcotest.test_case "cond" `Quick test_cond;
          Alcotest.test_case "control" `Quick test_control;
          Alcotest.test_case "string ops" `Quick test_string_ops;
          Alcotest.test_case "value/eval" `Quick test_value_eval;
          Alcotest.test_case "clean errors" `Quick test_errors_are_clean;
        ] );
      ( "qsql",
        [
          Alcotest.test_case "select where" `Quick test_select_where;
          Alcotest.test_case "computed column" `Quick test_select_computed_col;
          Alcotest.test_case "select by" `Quick test_select_by;
          Alcotest.test_case "exec" `Quick test_exec;
          Alcotest.test_case "sequential where" `Quick test_sequential_where;
          Alcotest.test_case "update not persistent" `Quick
            test_update_is_not_persistent;
          Alcotest.test_case "update by" `Quick test_update_by;
          Alcotest.test_case "delete" `Quick test_delete_rows_and_cols;
          Alcotest.test_case "fby" `Quick test_fby;
          Alcotest.test_case "insert/upsert" `Quick test_insert_upsert;
          Alcotest.test_case "qprint rendering" `Quick test_qprint_rendering;
          Alcotest.test_case "table literal" `Quick test_table_literal_eval;
        ] );
      ( "joins",
        [
          Alcotest.test_case "aj (paper example 2)" `Quick
            test_aj_paper_example;
          Alcotest.test_case "aj no match" `Quick test_aj_no_match_is_null;
          Alcotest.test_case "lj" `Quick test_lj;
          Alcotest.test_case "ij" `Quick test_ij;
          Alcotest.test_case "uj" `Quick test_uj;
          Alcotest.test_case "ej" `Quick test_ej;
        ] );
      ( "server",
        [
          Alcotest.test_case "serial execution" `Quick
            test_server_serial_execution;
          Alcotest.test_case "error isolation" `Quick
            test_server_error_isolation;
          Alcotest.test_case "shared globals" `Quick
            test_globals_shared_across_clients;
        ] );
      ("properties", props);
    ]
