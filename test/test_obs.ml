(* Observability layer tests: metrics registry math, per-query trace
   spans across a full wire-level round trip, the in-band .hq.stats
   query, the JSONL event sink, and the hardened QIPC handshake. *)

module M = Obs.Metrics
module Tr = Obs.Trace
module V = Pgdb.Value
module Db = Pgdb.Db
module S = Catalog.Schema
module Ty = Catalog.Sqltype
module QV = Qvalue.Value
module QA = Qvalue.Atom
module P = Platform.Hyperq_platform
module ST = Hyperq.Stage_timer

let check = Alcotest.check
let tint = Alcotest.int
let tbool = Alcotest.bool
let tfloat = Alcotest.float 1e-9

(* ------------------------------------------------------------------ *)
(* Metrics registry                                                    *)
(* ------------------------------------------------------------------ *)

let test_counter_and_gauge () =
  let reg = M.create () in
  let c = M.counter reg "c_total" in
  M.inc c;
  M.add c 41;
  check tint "counter accumulates" 42 (M.counter_value c);
  (* get-or-create: same (name, labels) pair returns the same counter *)
  M.inc (M.counter reg "c_total");
  check tint "re-registration shares state" 43 (M.counter_value c);
  let g = M.gauge reg "g" in
  M.set g 1.5;
  M.gauge_add g 1.0;
  check tfloat "gauge" 2.5 (M.gauge_value g);
  (* same name as a different kind is rejected *)
  match M.gauge reg "c_total" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "kind mismatch must raise"

let test_histogram_empty () =
  let reg = M.create () in
  let h = M.histogram reg "lat" in
  check tint "empty count" 0 (M.hist_count h);
  check tfloat "empty sum" 0.0 (M.hist_sum h);
  check tfloat "empty p50" 0.0 (M.percentile h 50.0);
  check tfloat "empty p99" 0.0 (M.percentile h 99.0)

let test_histogram_single_sample () =
  let reg = M.create () in
  let h = M.histogram reg "lat" in
  M.observe h 0.003;
  check tint "count" 1 (M.hist_count h);
  (* clamping to the observed range makes a single sample answer exactly
     itself at every percentile *)
  check tfloat "p50 is the sample" 0.003 (M.percentile h 50.0);
  check tfloat "p99 is the sample" 0.003 (M.percentile h 99.0);
  check tfloat "p0 is the sample" 0.003 (M.percentile h 0.0)

let test_histogram_percentiles () =
  let reg = M.create () in
  let buckets = Array.init 10 (fun i -> 0.01 *. float_of_int (i + 1)) in
  let h = M.histogram reg ~buckets "lat" in
  (* one sample in the middle of each bucket *)
  for i = 0 to 9 do
    M.observe h ((0.01 *. float_of_int i) +. 0.005)
  done;
  check tint "count" 10 (M.hist_count h);
  (* rank 5 lands at the upper edge of the 5th bucket *)
  check tfloat "p50" 0.05 (M.percentile h 50.0);
  (* rank 9.9 interpolates inside the last bucket, clamped to the max
     observed sample *)
  check tfloat "p99 clamped to max" 0.095 (M.percentile h 99.0);
  check tbool "sum" true (Float.abs (M.hist_sum h -. 0.5) < 1e-9);
  M.hist_reset h;
  check tint "reset drops samples" 0 (M.hist_count h)

let test_histogram_overflow_bucket () =
  let reg = M.create () in
  let h = M.histogram reg ~buckets:[| 0.1; 1.0 |] "lat" in
  M.observe h 5.0;
  (* above every bound: falls in the +Inf bucket, percentile reports the
     observed max rather than infinity *)
  check tfloat "overflow p50" 5.0 (M.percentile h 50.0)

let test_prometheus_exposition () =
  let reg = M.create () in
  M.add (M.counter reg ~help:"help text" "requests_total") 7;
  M.set (M.gauge reg "temperature") 21.5;
  let h = M.histogram reg ~buckets:[| 0.1; 1.0 |] ~labels:[ ("stage", "parse") ] "lat_seconds" in
  M.observe h 0.05;
  M.observe h 0.5;
  let text = M.to_prometheus reg in
  let contains needle =
    let re = Str.regexp_string needle in
    (try ignore (Str.search_forward re text 0); true with Not_found -> false)
  in
  check tbool "help line" true (contains "# HELP requests_total help text");
  check tbool "type line" true (contains "# TYPE requests_total counter");
  check tbool "counter sample" true (contains "requests_total 7");
  check tbool "gauge sample" true (contains "temperature 21.5");
  check tbool "bucket series is cumulative" true
    (contains "lat_seconds_bucket{stage=\"parse\",le=\"+Inf\"} 2");
  check tbool "histogram count" true
    (contains "lat_seconds_count{stage=\"parse\"} 2")

(* ------------------------------------------------------------------ *)
(* Stage timer (monotonic, recording order)                            *)
(* ------------------------------------------------------------------ *)

let test_stage_timer_order_and_totals () =
  let t = ST.create () in
  ST.record t ST.Parse 0.001;
  ST.record t ST.Execute 0.01;
  ST.record t ST.Parse 0.002;
  check tint "three spans" 3 (List.length (ST.spans t));
  (match ST.spans t with
  | [ (ST.Parse, a); (ST.Execute, _); (ST.Parse, b) ] ->
      check tfloat "first span first" 0.001 a;
      check tfloat "last span last" 0.002 b
  | _ -> Alcotest.fail "spans must come back in recording order");
  check tfloat "stage total sums" 0.003 (ST.total t ST.Parse);
  ST.reset t;
  check tint "reset" 0 (List.length (ST.spans t))

let test_stage_timer_monotonic_nonnegative () =
  let t = ST.create () in
  for _ = 1 to 100 do
    ST.timed t ST.Parse (fun () -> ())
  done;
  List.iter
    (fun (_, d) -> check tbool "span is non-negative" true (d >= 0.0))
    (ST.spans t)

(* ------------------------------------------------------------------ *)
(* Full round trip: spans, metrics, .hq.stats                          *)
(* ------------------------------------------------------------------ *)

let make_db () =
  let db = Db.create () in
  Db.load_table db
    (S.table ~order_col:"hq_ord" "trades"
       [
         S.column "hq_ord" Ty.TBigint;
         S.column "Symbol" Ty.TVarchar;
         S.column "Price" Ty.TDouble;
         S.column "Size" Ty.TBigint;
       ])
    (List.mapi
       (fun i (sym, px, sz) ->
         [| V.Int (Int64.of_int i); V.Str sym; V.Float px; V.Int (Int64.of_int sz) |])
       [ ("A", 10.0, 100); ("B", 20.0, 200); ("A", 11.0, 150) ]);
  db

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "query failed: %s" e

let sample_value reg name =
  match
    List.find_opt (fun s -> s.M.s_name = name) (M.snapshot reg)
  with
  | Some s -> s.M.s_value
  | None -> Alcotest.failf "metric %s not in snapshot" name

let test_round_trip_span_tree () =
  let p = P.create (make_db ()) in
  let c = P.Client.connect p in
  ignore (ok (P.Client.query c "select Price from trades where Symbol=`A"));
  let root =
    match (P.obs p).Obs.Ctx.last_trace with
    | Some r -> r
    | None -> Alcotest.fail "no trace recorded"
  in
  check tbool "root is the query span" true (Tr.name root = "query");
  (* the pipeline stages appear as children, in pipeline order *)
  let child_names = List.map Tr.name (Tr.children root) in
  let expected = [ "parse"; "algebrize"; "optimize"; "serialize"; "execute"; "pivot" ] in
  let positions =
    List.map
      (fun stage ->
        let rec idx i = function
          | [] -> Alcotest.failf "stage %s missing from span tree" stage
          | n :: _ when n = stage -> i
          | _ :: rest -> idx (i + 1) rest
        in
        idx 0 child_names)
      expected
  in
  check tbool "stages in pipeline order" true
    (List.for_all2 ( <= ) positions (List.tl positions @ [ max_int ]));
  (* every span carries a non-negative monotonic duration *)
  let rec walk sp =
    check tbool "span duration >= 0" true (Tr.duration_s sp >= 0.0);
    List.iter walk (Tr.children sp)
  in
  walk root;
  (* QIPC byte counts ride on the root span *)
  let root_attrs = Tr.attrs root in
  check tbool "qipc_bytes_in attr" true (List.mem_assoc "qipc_bytes_in" root_attrs);
  check tbool "qipc_bytes_out attr" true (List.mem_assoc "qipc_bytes_out" root_attrs);
  check tbool "query_sha attr" true (List.mem_assoc "query_sha" root_attrs);
  (* PG-wire byte counts ride on the span open during the backend round
     trip (the execute span) *)
  let exec_span =
    match Tr.find root "execute" with
    | Some s -> s
    | None -> Alcotest.fail "no execute span"
  in
  let exec_attrs = Tr.attrs exec_span in
  check tbool "pg_bytes_out attr" true (List.mem_assoc "pg_bytes_out" exec_attrs);
  (match List.assoc "pg_bytes_in" exec_attrs with
  | Tr.Int n -> check tbool "pg bytes flowed" true (n > 0)
  | _ -> Alcotest.fail "pg_bytes_in must be an int");
  (* the trace renders as one JSON line *)
  let json = Tr.to_json root in
  check tbool "trace json mentions pivot" true
    (String.length json > 0
    &&
    let re = Str.regexp_string "\"pivot\"" in
    (try ignore (Str.search_forward re json 0); true with Not_found -> false))

let test_round_trip_metrics () =
  let p = P.create (make_db ()) in
  let reg = (P.obs p).Obs.Ctx.registry in
  let c = P.Client.connect p in
  for _ = 1 to 3 do
    ignore (ok (P.Client.query c "select Price from trades"))
  done;
  check tbool "queries_total" true (sample_value reg "hq_queries_total" >= 3.0);
  check tbool "qipc in" true (sample_value reg "hq_qipc_bytes_in" > 0.0);
  check tbool "qipc out" true (sample_value reg "hq_qipc_bytes_out" > 0.0);
  check tbool "pg wire in" true (sample_value reg "hq_pgwire_bytes_in" > 0.0);
  check tbool "pg wire out" true (sample_value reg "hq_pgwire_bytes_out" > 0.0);
  (* with the plan cache on (the platform default), the repeats are
     template hits that skip Parse entirely — only the first query
     walks the full pipeline, but Execute/Pivot still run per query *)
  check tbool "per-stage histogram counted" true
    (sample_value reg "hq_stage_seconds_count{stage=\"parse\"}" >= 1.0);
  check tbool "execute histogram counted" true
    (sample_value reg "hq_stage_seconds_count{stage=\"execute\"}" >= 3.0);
  check tbool "pivot histogram counted" true
    (sample_value reg "hq_stage_seconds_count{stage=\"pivot\"}" >= 3.0);
  check tbool "query latency histogram" true
    (sample_value reg "hq_query_seconds_count" >= 3.0);
  (* the same registry renders as Prometheus text *)
  let text = P.stats_text p in
  let contains needle =
    let re = Str.regexp_string needle in
    (try ignore (Str.search_forward re text 0); true with Not_found -> false)
  in
  check tbool "prometheus queries_total" true (contains "hq_queries_total 3");
  check tbool "prometheus stage buckets" true
    (contains "hq_stage_seconds_bucket{stage=\"parse\",le=");
  check tbool "prometheus backend gauge" true (contains "hq_backend_selects_run")

let test_hq_stats_over_qipc () =
  let p = P.create (make_db ()) in
  let c = P.Client.connect p in
  for _ = 1 to 2 do
    ignore (ok (P.Client.query c "select Price from trades"))
  done;
  (* .hq.stats is answered by the endpoint without a backend round trip *)
  let sql_log =
    !((Hyperq.Engine.mdi (Platform.Xc.engine c.P.Client.conn.P.xc))
        .Hyperq.Mdi.backend.Hyperq.Backend.sql_log)
  in
  let statements_before = List.length sql_log in
  let v = ok (P.Client.query c ".hq.stats") in
  let sql_log_after =
    !((Hyperq.Engine.mdi (Platform.Xc.engine c.P.Client.conn.P.xc))
        .Hyperq.Mdi.backend.Hyperq.Backend.sql_log)
  in
  check tint "no backend statements for .hq.stats" statements_before
    (List.length sql_log_after);
  match v with
  | QV.Table tb ->
      let metric_col = QV.column_exn tb "metric" in
      let value_col = QV.column_exn tb "value" in
      let lookup name =
        let rec go i =
          if i >= QV.length metric_col then
            Alcotest.failf "metric %s not in .hq.stats" name
          else
            match QV.index metric_col i with
            | QV.Atom (QA.Sym s) when s = name -> (
                match QV.index value_col i with
                | QV.Atom (QA.Float f) -> f
                | _ -> Alcotest.fail "value column must be floats")
            | _ -> go (i + 1)
        in
        go 0
      in
      check tbool "queries_total over QIPC" true
        (lookup "hq_queries_total" >= 2.0);
      check tbool "stage histograms over QIPC" true
        (lookup "hq_stage_seconds_count{stage=\"serialize\"}" >= 2.0);
      check tbool "admin query counted separately" true
        (lookup "hq_admin_queries_total" >= 1.0)
  | v -> Alcotest.failf "expected a table, got %s" (Qvalue.Qprint.to_string v)

(* ------------------------------------------------------------------ *)
(* JSONL events                                                        *)
(* ------------------------------------------------------------------ *)

let test_jsonl_events () =
  let sink, read = Obs.Events.memory () in
  let ctx = Obs.Ctx.create ~events:sink () in
  let p = P.create ~obs:ctx (make_db ()) in
  let c = P.Client.connect p in
  ignore (ok (P.Client.query c "select Price from trades"));
  (match P.Client.query c "select nope from missing_table" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected an error");
  let contains line needle =
    let re = Str.regexp_string needle in
    (try ignore (Str.search_forward re line 0); true with Not_found -> false)
  in
  (* the sink now carries two interleaved record kinds: per-query events
     (keyed by query_sha) and structured log lines (keyed by level) *)
  let all = read () in
  let lines = List.filter (fun l -> contains l "\"query_sha\"") all in
  let logs = List.filter (fun l -> contains l "\"level\"") all in
  check tint "one event per query" 2 (List.length lines);
  check tbool "log lines interleave on the same sink" true (logs <> []);
  check tbool "a query-completion log line carries a trace id" true
    (List.exists
       (fun l ->
         contains l "\"msg\":\"query completed\""
         && (not (contains l "\"trace_id\":\"\""))
         && contains l "\"trace_id\":\"")
       logs);
  let first = List.nth lines 0 and second = List.nth lines 1 in
  check tbool "ok status" true (contains first "\"status\":\"ok\"");
  check tbool "row count" true (contains first "\"rows_out\":3");
  check tbool "stage durations present" true (contains first "\"parse\":");
  check tbool "pivot stage present" true (contains first "\"pivot\":");
  check tbool "qipc bytes in event" true (contains first "\"qipc_bytes_in\":");
  check tbool "sql statement count" true (contains first "\"sql_statements\":");
  check tbool "query sha present" true
    (contains first
       (Printf.sprintf "\"query_sha\":\"%s\""
          (Obs.Events.query_sha "select Price from trades")));
  check tbool "error status" true (contains second "\"status\":\"error\"");
  check tbool "error class non-empty" true
    (not (contains second "\"error_class\":\"\""))

(* ------------------------------------------------------------------ *)
(* JSON float rendering (non-finite values must stay parseable)        *)
(* ------------------------------------------------------------------ *)

let tstr = Alcotest.string

let test_json_floats_events () =
  let f v = Obs.Events.field_json (Obs.Events.Float v) in
  check tstr "NaN is null" "null" (f Float.nan);
  check tstr "+inf is a string" "\"inf\"" (f Float.infinity);
  check tstr "-inf is a string" "\"-inf\"" (f Float.neg_infinity);
  check tstr "integral floats keep a decimal point" "3.0" (f 3.0);
  check tstr "ordinary floats unchanged" "2.5" (f 2.5);
  (* nested in an object, the line stays valid JSON *)
  let obj =
    Obs.Events.field_json
      (Obs.Events.Obj [ ("a", Obs.Events.Float Float.nan) ])
  in
  check tstr "object with NaN field" "{\"a\":null}" obj

let test_json_floats_trace_attrs () =
  let f v = Tr.attr_json (Tr.Float v) in
  check tstr "NaN attr is null" "null" (f Float.nan);
  check tstr "+inf attr" "\"inf\"" (f Float.infinity);
  check tstr "-inf attr" "\"-inf\"" (f Float.neg_infinity);
  check tstr "finite attr unchanged" "1.5" (f 1.5);
  check tstr "int attr" "7" (Tr.attr_json (Tr.Int 7));
  check tstr "str attr quoted" "\"x\"" (Tr.attr_json (Tr.Str "x"))

(* ------------------------------------------------------------------ *)
(* Trace and span identifiers                                          *)
(* ------------------------------------------------------------------ *)

let is_hex s = String.for_all (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false) s

let test_trace_ids () =
  let tid = Tr.gen_trace_id () in
  let sid = Tr.gen_span_id () in
  check tint "trace id is 32 hex chars" 32 (String.length tid);
  check tint "span id is 16 hex chars" 16 (String.length sid);
  check tbool "trace id lowercase hex" true (is_hex tid);
  check tbool "span id lowercase hex" true (is_hex sid);
  check tbool "successive trace ids distinct" true (tid <> Tr.gen_trace_id ());
  check tstr "traceparent format"
    (Printf.sprintf "00-%s-%s-01" tid sid)
    (Tr.traceparent ~trace_id:tid ~span_id:sid);
  (* every trace gets its own id; every span in a trace its own id *)
  let tr = Tr.start "query" in
  check tint "started trace carries a 32-hex id" 32
    (String.length (Tr.trace_id tr));
  Tr.with_span tr "a" (fun () -> ());
  Tr.with_span tr "b" (fun () -> ());
  let root = Tr.finish tr in
  let ids = List.map Tr.span_id (root :: Tr.children root) in
  check tint "three spans" 3 (List.length ids);
  check tint "span ids distinct" 3
    (List.length (List.sort_uniq compare ids))

let test_trace_export_ring () =
  let ex = Obs.Export.create ~capacity:2 () in
  let mk name =
    let tr = Tr.start name in
    Tr.with_span tr "execute" (fun () -> ());
    let root = Tr.finish tr in
    Obs.Export.offer ex ~ts:1.0 ~trace_id:(Tr.trace_id tr) root;
    Tr.trace_id tr
  in
  let _t1 = mk "q1" in
  let t2 = mk "q2" in
  let t3 = mk "q3" in
  check tint "ring bounded" 2 (Obs.Export.size ex);
  check tint "offers counted" 3 (Obs.Export.exported_total ex);
  (match Obs.Export.recent ex 10 with
  | [ a; b ] ->
      check tstr "newest first" t3 a.Obs.Export.x_trace_id;
      check tstr "then previous" t2 b.Obs.Export.x_trace_id
  | l -> Alcotest.failf "expected 2 traces, got %d" (List.length l));
  check tbool "oldest evicted" true (Obs.Export.find ex _t1 = None);
  let json = Obs.Export.to_json ex in
  let contains needle =
    let re = Str.regexp_string needle in
    (try ignore (Str.search_forward re json 0); true with Not_found -> false)
  in
  check tbool "flat spans carry traceID" true
    (contains (Printf.sprintf "\"traceID\":\"%s\"" t3));
  check tbool "flat spans carry parent pointers" true
    (contains "\"parentSpanID\":");
  check tbool "span count present" true (contains "\"spanCount\":2")

(* ------------------------------------------------------------------ *)
(* Time-series ring                                                    *)
(* ------------------------------------------------------------------ *)

module TS = Obs.Timeseries

let has_sub hay needle =
  let re = Str.regexp_string needle in
  try
    ignore (Str.search_forward re hay 0);
    true
  with Not_found -> false

let test_timeseries_windows () =
  let reg = M.create () in
  let q = M.counter reg "hq_queries_total" in
  let e = M.counter reg "hq_query_errors_total" in
  let h = M.histogram reg "hq_query_seconds" in
  (* interval 0: every tick/sample takes a snapshot — deterministic *)
  let ts = TS.create ~interval_s:0.0 ~capacity:8 reg in
  TS.sample ts;
  for _ = 1 to 100 do
    M.inc q;
    M.observe h 0.004
  done;
  M.inc e;
  TS.sample ts;
  (match TS.windows ts with
  | [ w ] ->
      check tint "queries delta" 100 w.TS.w_queries;
      check tint "errors delta" 1 w.TS.w_errors;
      check tbool "qps positive" true (w.TS.w_qps > 0.0);
      check tbool "error rate is errors/queries" true
        (Float.abs (w.TS.w_error_rate -. 0.01) < 1e-9);
      check tbool "p99 finite" true (Float.is_finite w.TS.w_p99_s);
      check tbool "p50 lands near the observations" true
        (w.TS.w_p50_s > 0.0 && w.TS.w_p50_s < 0.1)
  | ws -> Alcotest.failf "expected 1 window, got %d" (List.length ws));
  (* an idle window reports zero traffic and nan percentiles *)
  TS.sample ts;
  (match List.rev (TS.windows ts) with
  | idle :: _ ->
      check tint "idle window queries" 0 idle.TS.w_queries;
      check tbool "idle percentile is nan" true (Float.is_nan idle.TS.w_p99_s);
      check tfloat "idle error rate" 0.0 idle.TS.w_error_rate
  | [] -> Alcotest.fail "expected windows");
  (* nan percentiles must render as JSON null, not "nan" *)
  let js = TS.to_json ts in
  check tbool "json carries windows" true (has_sub js "\"windows\":[");
  check tbool "nan renders as null" true (has_sub js "\"p99_ms\":null");
  check tbool "json never prints bare nan" false (has_sub js ":nan")

let test_timeseries_ring_and_reset () =
  let reg = M.create () in
  let ts = TS.create ~interval_s:0.0 ~capacity:4 reg in
  for _ = 1 to 10 do
    TS.sample ts
  done;
  check tint "ring capped at capacity" 4 (TS.size ts);
  check tint "samples_total keeps counting" 10 (TS.samples_total ts);
  check tint "windows pair stored snapshots" 3 (List.length (TS.windows ts));
  TS.reset ts;
  check tint "reset empties the ring" 0 (TS.size ts);
  check tint "samples_total survives reset" 10 (TS.samples_total ts);
  (* a hook registered before reset still runs after it *)
  let fired = ref 0 in
  TS.on_sample ts (fun () -> incr fired);
  TS.sample ts;
  check tint "hooks survive reset" 1 !fired

let test_percentile_delta_math () =
  let bounds = [| 0.001; 0.01; 0.1 |] in
  (* 90 observations in (0.001, 0.01], 10 in the +Inf bucket *)
  let counts = [| 0; 90; 0; 10 |] in
  let p50 = TS.percentile_of_deltas ~bounds ~counts 50.0 in
  check tbool "p50 interpolates inside its bucket" true
    (p50 > 0.001 && p50 <= 0.01);
  let p99 = TS.percentile_of_deltas ~bounds ~counts 99.0 in
  check tfloat "overflow clamps to the top finite bound" 0.1 p99;
  check tbool "empty deltas give nan" true
    (Float.is_nan
       (TS.percentile_of_deltas ~bounds ~counts:[| 0; 0; 0; 0 |] 50.0));
  check tbool "frac_le at a bucket edge" true
    (Float.abs (TS.frac_le ~bounds ~counts 0.01 -. 0.9) < 1e-9);
  check tbool "frac_le above all bounds is 1" true
    (Float.abs (TS.frac_le ~bounds ~counts 1.0 -. 1.0) < 1e-9)

(* ------------------------------------------------------------------ *)
(* SLO monitor                                                         *)
(* ------------------------------------------------------------------ *)

let test_slo_spec_parsing () =
  (match Obs.Slo.parse_spec "p99<50ms,err<1%,fast=5s,slow=60s,burn=2" with
  | Ok cfg ->
      check tint "two objectives" 2 (List.length cfg.Obs.Slo.objectives);
      check tfloat "fast window" 5.0 cfg.Obs.Slo.fast_s;
      check tfloat "slow window" 60.0 cfg.Obs.Slo.slow_s;
      check tfloat "burn threshold" 2.0 cfg.Obs.Slo.burn_threshold;
      (match List.assoc "p99<50ms" cfg.Obs.Slo.objectives with
      | Obs.Slo.Latency { l_threshold_s; l_budget } ->
          check tbool "threshold is 50ms" true
            (Float.abs (l_threshold_s -. 0.05) < 1e-12);
          check tbool "p99 budget is 1%" true
            (Float.abs (l_budget -. 0.01) < 1e-12)
      | _ -> Alcotest.fail "p99 objective must be a latency objective");
      (match List.assoc "err<1%" cfg.Obs.Slo.objectives with
      | Obs.Slo.Error_rate { e_budget } ->
          check tbool "error budget is 1%" true
            (Float.abs (e_budget -. 0.01) < 1e-12)
      | _ -> Alcotest.fail "err objective must be an error-rate objective")
  | Error m -> Alcotest.failf "spec must parse: %s" m);
  (match Obs.Slo.parse_spec "fast=5s" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "a spec with no objectives must be rejected");
  match Obs.Slo.parse_spec "p99<oops" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "a bad duration must be rejected"

let test_slo_burn_and_recovery () =
  let reg = M.create () in
  let q = M.counter reg "hq_queries_total" in
  let h = M.histogram reg "hq_query_seconds" in
  let ts = TS.create ~interval_s:0.0 ~capacity:64 reg in
  let cfg =
    match Obs.Slo.parse_spec "p99<1ms,fast=50ms,slow=50ms" with
    | Ok c -> c
    | Error m -> Alcotest.failf "spec: %s" m
  in
  let slo = Obs.Slo.create ~config:cfg ts in
  TS.sample ts;
  check tbool "idle is healthy" true (Obs.Slo.evaluate slo).Obs.Slo.v_healthy;
  (* latency spike: every query lands far above the 1ms threshold *)
  for _ = 1 to 50 do
    M.inc q;
    M.observe h 0.05
  done;
  TS.sample ts;
  let v = Obs.Slo.evaluate slo in
  check tbool "spike burns both windows" false v.Obs.Slo.v_healthy;
  (match v.Obs.Slo.v_burns with
  | [ b ] ->
      check tbool "fast burn over threshold" true (b.Obs.Slo.b_fast_burn >= 1.0);
      check tbool "objective marked burning" true b.Obs.Slo.b_burning
  | bs -> Alcotest.failf "expected 1 burn entry, got %d" (List.length bs));
  check tbool "degradations counted" true (Obs.Slo.degraded_total slo >= 1);
  (* recovery: the spike ages out of the 50ms windows, and fresh fast
     traffic shows a healthy window *)
  Unix.sleepf 0.06;
  TS.sample ts;
  for _ = 1 to 50 do
    M.inc q;
    M.observe h 0.0001
  done;
  TS.sample ts;
  let v = Obs.Slo.evaluate slo in
  check tbool "recovers once the spike ages out" true v.Obs.Slo.v_healthy

(* ------------------------------------------------------------------ *)
(* Handshake hardening                                                 *)
(* ------------------------------------------------------------------ *)

let test_handshake_validation () =
  let v = P.Client.validate_handshake ~requested:3 in
  (match v "\003" with
  | Ok 3 -> ()
  | _ -> Alcotest.fail "capability 3 must be accepted");
  (match v "\001" with
  | Ok 1 -> ()
  | _ -> Alcotest.fail "downgrade to capability 1 must be accepted");
  (match v "" with
  | Error m -> check tbool "rejection message" true (m = "authentication rejected")
  | Ok _ -> Alcotest.fail "empty reply is a rejection");
  (match v "\009" with
  | Error m ->
      check tbool "capability error is distinct" true
        (m <> "authentication rejected")
  | Ok _ -> Alcotest.fail "capability above requested is malformed");
  match v "ab" with
  | Error m ->
      check tbool "length error is distinct" true (m <> "authentication rejected")
  | Ok _ -> Alcotest.fail "multi-byte reply is malformed"

let test_auth_failure_counted () =
  let p = P.create (make_db ()) in
  (match P.Client.connect ~user:"intruder" ~password:"guess" p with
  | exception P.Client.Client_error m ->
      check tbool "distinct rejection error" true (m = "authentication rejected")
  | _ -> Alcotest.fail "bad credentials must be rejected");
  let reg = (P.obs p).Obs.Ctx.registry in
  check tbool "auth failure counted" true
    (sample_value reg "hq_auth_failures_total" >= 1.0)

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counter and gauge" `Quick test_counter_and_gauge;
          Alcotest.test_case "histogram: empty" `Quick test_histogram_empty;
          Alcotest.test_case "histogram: single sample" `Quick
            test_histogram_single_sample;
          Alcotest.test_case "histogram: percentiles" `Quick
            test_histogram_percentiles;
          Alcotest.test_case "histogram: overflow bucket" `Quick
            test_histogram_overflow_bucket;
          Alcotest.test_case "prometheus exposition" `Quick
            test_prometheus_exposition;
        ] );
      ( "stage-timer",
        [
          Alcotest.test_case "recording order and totals" `Quick
            test_stage_timer_order_and_totals;
          Alcotest.test_case "monotonic non-negative" `Quick
            test_stage_timer_monotonic_nonnegative;
        ] );
      ( "round-trip",
        [
          Alcotest.test_case "span tree over the wire" `Quick
            test_round_trip_span_tree;
          Alcotest.test_case "metrics over the wire" `Quick
            test_round_trip_metrics;
          Alcotest.test_case ".hq.stats over QIPC" `Quick
            test_hq_stats_over_qipc;
          Alcotest.test_case "JSONL events" `Quick test_jsonl_events;
        ] );
      ( "json-floats",
        [
          Alcotest.test_case "event fields" `Quick test_json_floats_events;
          Alcotest.test_case "trace attributes" `Quick
            test_json_floats_trace_attrs;
        ] );
      ( "trace-ids",
        [
          Alcotest.test_case "id generation and traceparent" `Quick
            test_trace_ids;
          Alcotest.test_case "export ring" `Quick test_trace_export_ring;
        ] );
      ( "timeseries",
        [
          Alcotest.test_case "windows from snapshot deltas" `Quick
            test_timeseries_windows;
          Alcotest.test_case "ring wrap and reset" `Quick
            test_timeseries_ring_and_reset;
          Alcotest.test_case "percentile-from-deltas math" `Quick
            test_percentile_delta_math;
        ] );
      ( "slo",
        [
          Alcotest.test_case "spec parsing" `Quick test_slo_spec_parsing;
          Alcotest.test_case "burn and recovery" `Quick
            test_slo_burn_and_recovery;
        ] );
      ( "handshake",
        [
          Alcotest.test_case "reply validation" `Quick test_handshake_validation;
          Alcotest.test_case "auth failures counted" `Quick
            test_auth_failure_counted;
        ] );
    ]
