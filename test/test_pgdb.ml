(* Tests for the PG-compatible SQL engine (lib/pgdb). *)

module V = Pgdb.Value
module Db = Pgdb.Db
module S = Catalog.Schema
module Ty = Catalog.Sqltype

let check = Alcotest.check
let tint = Alcotest.int
let tstr = Alcotest.string
let tbool = Alcotest.bool

(* fresh database with the trades/quotes fixture *)
let fixture () =
  let db = Db.create () in
  Db.load_table db
    (S.table "trades"
       [
         S.column "sym" Ty.TVarchar;
         S.column "t" Ty.TBigint;
         S.column "price" Ty.TDouble;
         S.column "size" Ty.TBigint;
       ])
    [
      [| V.Str "A"; V.Int 1000L; V.Float 10.0; V.Int 100L |];
      [| V.Str "B"; V.Int 2000L; V.Float 20.0; V.Int 200L |];
      [| V.Str "A"; V.Int 3000L; V.Float 11.0; V.Int 150L |];
      [| V.Str "B"; V.Int 4000L; V.Float 21.0; V.Int 250L |];
      [| V.Str "A"; V.Int 5000L; V.Float 12.0; V.Int 300L |];
    ];
  Db.load_table db
    (S.table "quotes"
       [
         S.column "sym" Ty.TVarchar;
         S.column "t" Ty.TBigint;
         S.column "bid" Ty.TDouble;
         S.column "ask" Ty.TDouble;
       ])
    [
      [| V.Str "A"; V.Int 500L; V.Float 9.9; V.Float 10.1 |];
      [| V.Str "B"; V.Int 1500L; V.Float 19.9; V.Float 20.1 |];
      [| V.Str "A"; V.Int 2500L; V.Float 10.9; V.Float 11.1 |];
      [| V.Str "B"; V.Int 3500L; V.Float 20.9; V.Float 21.1 |];
    ];
  Db.open_session db

let rows_of = function
  | Db.Rows (res, _) -> res
  | Db.Complete tag -> Alcotest.failf "expected rows, got %s" tag

let q sess sql = rows_of (Db.exec sess sql)

let cell res i j = res.Pgdb.Exec.res_rows.(i).(j)

(* ------------------------------------------------------------------ *)
(* Basic queries                                                       *)
(* ------------------------------------------------------------------ *)

let test_select_all () =
  let sess = fixture () in
  let res = q sess "SELECT * FROM trades" in
  check tint "5 rows" 5 (Array.length res.Pgdb.Exec.res_rows);
  check tint "4 cols" 4 (List.length res.Pgdb.Exec.res_cols)

let test_where_and_projection () =
  let sess = fixture () in
  let res = q sess "SELECT price FROM trades WHERE sym = 'A'" in
  check tint "3 rows" 3 (Array.length res.Pgdb.Exec.res_rows);
  match cell res 0 0 with
  | V.Float f -> check (Alcotest.float 1e-9) "first price" 10.0 f
  | v -> Alcotest.failf "expected float, got %s" (V.to_display v)

let test_expressions () =
  let sess = fixture () in
  let res =
    q sess "SELECT price * size AS notional FROM trades WHERE sym = 'B'"
  in
  (match cell res 0 0 with
  | V.Float f -> check (Alcotest.float 1e-9) "notional" 4000.0 f
  | v -> Alcotest.failf "expected float, got %s" (V.to_display v));
  check tstr "alias" "notional" (fst (List.hd res.Pgdb.Exec.res_cols))

let test_order_by_limit () =
  let sess = fixture () in
  let res = q sess "SELECT price FROM trades ORDER BY price DESC LIMIT 2" in
  check tint "2 rows" 2 (Array.length res.Pgdb.Exec.res_rows);
  match (cell res 0 0, cell res 1 0) with
  | V.Float a, V.Float b ->
      check (Alcotest.float 1e-9) "top" 21.0 a;
      check (Alcotest.float 1e-9) "second" 20.0 b
  | _ -> Alcotest.fail "bad types"

let test_distinct () =
  let sess = fixture () in
  let res = q sess "SELECT DISTINCT sym FROM trades ORDER BY sym ASC" in
  check tint "2 rows" 2 (Array.length res.Pgdb.Exec.res_rows)

(* ------------------------------------------------------------------ *)
(* Null semantics (3VL)                                                *)
(* ------------------------------------------------------------------ *)

let null_fixture () =
  let db = Db.create () in
  Db.load_table db
    (S.table "t" [ S.column "a" Ty.TBigint; S.column "b" Ty.TBigint ])
    [
      [| V.Int 1L; V.Int 1L |];
      [| V.Null; V.Int 2L |];
      [| V.Null; V.Null |];
    ];
  Db.open_session db

let test_null_equality_3vl () =
  let sess = null_fixture () in
  (* plain = never matches NULL *)
  let res = q sess "SELECT a FROM t WHERE a = a" in
  check tint "only non-null row" 1 (Array.length res.Pgdb.Exec.res_rows);
  (* IS NOT DISTINCT FROM matches nulls: the Hyper-Q 2VL rewrite target *)
  let res = q sess "SELECT a FROM t WHERE a IS NOT DISTINCT FROM a" in
  check tint "all rows" 3 (Array.length res.Pgdb.Exec.res_rows)

let test_null_arith_propagates () =
  let sess = null_fixture () in
  let res = q sess "SELECT a + b FROM t" in
  check tbool "null + x is null" true (V.is_null (cell res 1 0));
  check tbool "1+1 not null" false (V.is_null (cell res 0 0))

let test_coalesce () =
  let sess = null_fixture () in
  let res = q sess "SELECT COALESCE(a, 0) FROM t" in
  check tbool "coalesce fills" true (cell res 1 0 = V.Int 0L)

let test_count_ignores_null () =
  let sess = null_fixture () in
  let res = q sess "SELECT COUNT(*) AS n, COUNT(a) AS na FROM t" in
  check tbool "count-star 3" true (cell res 0 0 = V.Int 3L);
  check tbool "count(a) 1" true (cell res 0 1 = V.Int 1L)

(* ------------------------------------------------------------------ *)
(* Aggregation                                                         *)
(* ------------------------------------------------------------------ *)

let test_group_by () =
  let sess = fixture () in
  let res =
    q sess
      "SELECT sym, MAX(price) AS mx, COUNT(*) AS n FROM trades GROUP BY sym \
       ORDER BY sym ASC"
  in
  check tint "2 groups" 2 (Array.length res.Pgdb.Exec.res_rows);
  check tbool "A max" true (cell res 0 1 = V.Float 12.0);
  check tbool "B count" true (cell res 1 2 = V.Int 2L)

let test_having () =
  let sess = fixture () in
  let res =
    q sess
      "SELECT sym FROM trades GROUP BY sym HAVING COUNT(*) > 2 ORDER BY sym \
       ASC"
  in
  check tint "only A has 3" 1 (Array.length res.Pgdb.Exec.res_rows);
  check tbool "A" true (cell res 0 0 = V.Str "A")

let test_global_aggregate () =
  let sess = fixture () in
  let res = q sess "SELECT SUM(size) FROM trades" in
  check tbool "sum" true (cell res 0 0 = V.Int 1000L)

let test_avg_stddev () =
  let sess = fixture () in
  let res = q sess "SELECT AVG(price) FROM trades WHERE sym = 'A'" in
  match cell res 0 0 with
  | V.Float f -> check (Alcotest.float 1e-9) "avg" 11.0 f
  | v -> Alcotest.failf "expected float, got %s" (V.to_display v)

(* ------------------------------------------------------------------ *)
(* Joins                                                               *)
(* ------------------------------------------------------------------ *)

let test_inner_join () =
  let sess = fixture () in
  let res =
    q sess
      "SELECT t.sym, t.price, q.bid FROM trades t INNER JOIN quotes q ON \
       t.sym = q.sym AND q.t <= t.t"
  in
  (* every trade matches all earlier quotes of its symbol *)
  check tint "8 pairs" 8 (Array.length res.Pgdb.Exec.res_rows)

let test_left_join_null_padding () =
  let sess = fixture () in
  let res =
    q sess
      "SELECT t.sym, q.bid FROM trades t LEFT OUTER JOIN quotes q ON t.sym = \
       q.sym AND q.t > 10000"
  in
  check tint "all trades kept" 5 (Array.length res.Pgdb.Exec.res_rows);
  check tbool "bid is null" true (V.is_null (cell res 0 1))

let test_asof_join_pattern () =
  (* the SQL shape Hyper-Q serializes for aj: window + rn = 1 filter *)
  let sess = fixture () in
  let res =
    q sess
      "SELECT sym, t, price, bid FROM (SELECT t.sym AS sym, t.t AS t, \
       t.price AS price, q.bid AS bid, ROW_NUMBER() OVER (PARTITION BY \
       t.sym, t.t ORDER BY q.t DESC) AS rn FROM trades t LEFT OUTER JOIN \
       quotes q ON t.sym = q.sym AND q.t <= t.t) x WHERE rn = 1 ORDER BY t \
       ASC"
  in
  check tint "one row per trade" 5 (Array.length res.Pgdb.Exec.res_rows);
  (* trade A@1000 gets quote A@500 *)
  check tbool "prevailing bid" true (cell res 0 3 = V.Float 9.9);
  (* trade A@5000 gets quote A@2500 *)
  check tbool "latest bid" true (cell res 4 3 = V.Float 10.9)

let test_hash_join_null_keys () =
  (* plain = never matches NULL keys; IS NOT DISTINCT FROM does *)
  let db = Db.create () in
  Db.load_table db
    (S.table "l" [ S.column "k" Ty.TVarchar; S.column "v" Ty.TBigint ])
    [ [| V.Str "a"; V.Int 1L |]; [| V.Null; V.Int 2L |] ];
  Db.load_table db
    (S.table "r" [ S.column "k" Ty.TVarchar; S.column "w" Ty.TBigint ])
    [ [| V.Str "a"; V.Int 10L |]; [| V.Null; V.Int 20L |] ];
  let sess = Db.open_session db in
  let eq = q sess "SELECT l.v, r.w FROM l INNER JOIN r ON l.k = r.k" in
  check tint "= skips nulls" 1 (Array.length eq.Pgdb.Exec.res_rows);
  let nsafe =
    q sess "SELECT l.v, r.w FROM l INNER JOIN r ON l.k IS NOT DISTINCT FROM r.k"
  in
  check tint "null-safe matches nulls" 2 (Array.length nsafe.Pgdb.Exec.res_rows)

let test_union_all () =
  let sess = fixture () in
  let res =
    q sess
      "SELECT s FROM (SELECT sym AS s FROM trades UNION ALL SELECT sym AS s \
       FROM quotes) u"
  in
  check tint "concatenated" 9 (Array.length res.Pgdb.Exec.res_rows);
  (* arity mismatch is an error *)
  match
    Db.exec sess
      "SELECT * FROM (SELECT sym FROM trades UNION ALL SELECT sym, t FROM \
       quotes) u"
  with
  | exception Pgdb.Errors.Sql_error _ -> ()
  | _ -> Alcotest.fail "arity mismatch must fail"

(* ------------------------------------------------------------------ *)
(* Window functions                                                    *)
(* ------------------------------------------------------------------ *)

let test_row_number () =
  let sess = fixture () in
  let res =
    q sess
      "SELECT sym, ROW_NUMBER() OVER (PARTITION BY sym ORDER BY t ASC) AS rn \
       FROM trades ORDER BY t ASC"
  in
  check tbool "first A is 1" true (cell res 0 1 = V.Int 1L);
  check tbool "second A is 2" true (cell res 2 1 = V.Int 2L);
  check tbool "first B is 1" true (cell res 1 1 = V.Int 1L)

let test_window_running_sum () =
  let sess = fixture () in
  let res =
    q sess
      "SELECT SUM(size) OVER (PARTITION BY sym ORDER BY t ASC) AS rs FROM \
       trades ORDER BY t ASC"
  in
  (* A: 100, 250, 550 ; B: 200, 450 *)
  check tbool "running 1" true (cell res 0 0 = V.Int 100L);
  check tbool "running 2" true (cell res 2 0 = V.Int 250L);
  check tbool "running 3" true (cell res 4 0 = V.Int 550L)

let test_lag () =
  let sess = fixture () in
  let res =
    q sess
      "SELECT price - LAG(price) OVER (PARTITION BY sym ORDER BY t ASC) AS d \
       FROM trades ORDER BY t ASC"
  in
  check tbool "first delta null" true (V.is_null (cell res 0 0));
  check tbool "second A delta 1.0" true (cell res 2 0 = V.Float 1.0)

let test_moving_window_frame () =
  let sess = fixture () in
  let res =
    q sess
      "SELECT AVG(price) OVER (PARTITION BY sym ORDER BY t ASC ROWS BETWEEN \
       1 PRECEDING AND CURRENT ROW) AS m FROM trades WHERE sym = 'A' ORDER \
       BY t ASC"
  in
  check tbool "m0 = 10" true (cell res 0 0 = V.Float 10.0);
  check tbool "m1 = 10.5" true (cell res 1 0 = V.Float 10.5);
  check tbool "m2 = 11.5" true (cell res 2 0 = V.Float 11.5)

(* ------------------------------------------------------------------ *)
(* Subqueries, DDL, temp tables, views                                 *)
(* ------------------------------------------------------------------ *)

let test_subquery () =
  let sess = fixture () in
  let res =
    q sess
      "SELECT mx FROM (SELECT sym, MAX(price) AS mx FROM trades GROUP BY \
       sym) sub ORDER BY mx DESC"
  in
  check tbool "21 first" true (cell res 0 0 = V.Float 21.0)

let test_temp_table_lifecycle () =
  let sess = fixture () in
  (match Db.exec sess "CREATE TEMPORARY TABLE tt AS SELECT * FROM trades WHERE sym = 'A'" with
  | Db.Complete tag -> check tstr "tag" "SELECT 3" tag
  | Db.Rows _ -> Alcotest.fail "expected Complete");
  let res = q sess "SELECT COUNT(*) FROM tt" in
  check tbool "3 rows" true (cell res 0 0 = V.Int 3L);
  (* temp table is session-scoped *)
  let sess2 = Db.open_session (let s = sess in s.Db.db) in
  match Db.exec sess2 "SELECT * FROM tt" with
  | exception Pgdb.Errors.Sql_error { code = "42P01"; _ } -> ()
  | _ -> Alcotest.fail "temp table must not leak across sessions"

let test_create_insert () =
  let db = Db.create () in
  let sess = Db.open_session db in
  ignore (Db.exec sess "CREATE TABLE kv (k varchar, v bigint)");
  (match Db.exec sess "INSERT INTO kv VALUES ('a', 1), ('b', 2)" with
  | Db.Complete tag -> check tstr "insert tag" "INSERT 0 2" tag
  | Db.Rows _ -> Alcotest.fail "expected Complete");
  let res = q sess "SELECT v FROM kv WHERE k = 'b'" in
  check tbool "lookup" true (cell res 0 0 = V.Int 2L)

let test_view () =
  let sess = fixture () in
  ignore
    (Db.exec sess "CREATE VIEW a_trades AS SELECT * FROM trades WHERE sym = 'A'");
  let res = q sess "SELECT COUNT(*) FROM a_trades" in
  check tbool "3 rows through view" true (cell res 0 0 = V.Int 3L)

let test_drop () =
  let sess = fixture () in
  ignore (Db.exec sess "CREATE TEMPORARY TABLE tt AS SELECT * FROM trades");
  ignore (Db.exec sess "DROP TABLE tt");
  (match Db.exec sess "SELECT * FROM tt" with
  | exception Pgdb.Errors.Sql_error _ -> ()
  | _ -> Alcotest.fail "table should be gone");
  match Db.exec sess "DROP TABLE IF EXISTS nonexistent" with
  | Db.Complete _ -> ()
  | Db.Rows _ -> Alcotest.fail "expected Complete"

let test_catalog_queryable () =
  let sess = fixture () in
  let res =
    q sess
      "SELECT column_name, type_name FROM pg_catalog_columns WHERE \
       table_name = 'trades' ORDER BY ordinal ASC"
  in
  check tint "4 columns" 4 (Array.length res.Pgdb.Exec.res_rows);
  check tbool "first is sym" true (cell res 0 0 = V.Str "sym")

(* ------------------------------------------------------------------ *)
(* Errors                                                              *)
(* ------------------------------------------------------------------ *)

let test_errors () =
  let sess = fixture () in
  (match Db.exec sess "SELECT * FROM missing" with
  | exception Pgdb.Errors.Sql_error { code = "42P01"; _ } -> ()
  | _ -> Alcotest.fail "undefined table should raise");
  (match Db.exec sess "SELECT nocol FROM trades" with
  | exception Pgdb.Errors.Sql_error { code = "42703"; _ } -> ()
  | _ -> Alcotest.fail "undefined column should raise");
  (match Db.exec sess "SELECT 1 +" with
  | exception Pgdb.Errors.Sql_error { code = "42601"; _ } -> ()
  | _ -> Alcotest.fail "syntax error should raise");
  match Db.exec sess "SELECT 1/0" with
  | exception Pgdb.Errors.Sql_error { code = "22012"; _ } -> ()
  | _ -> Alcotest.fail "division by zero should raise"

let test_case_and_cast () =
  let sess = fixture () in
  let res =
    q sess
      "SELECT CASE WHEN price > 15.0 THEN 'high' ELSE 'low' END AS lvl FROM \
       trades ORDER BY t ASC"
  in
  check tbool "low" true (cell res 0 0 = V.Str "low");
  check tbool "high" true (cell res 1 0 = V.Str "high");
  let res = q sess "SELECT CAST('42' AS bigint)" in
  check tbool "cast" true (cell res 0 0 = V.Int 42L);
  let res = q sess "SELECT '42'::bigint" in
  check tbool "pg cast" true (cell res 0 0 = V.Int 42L)

let test_date_values () =
  let db = Db.create () in
  let sess = Db.open_session db in
  let res = q sess "SELECT CAST('2016-06-26' AS date) AS d" in
  match cell res 0 0 with
  | V.Date days ->
      check tstr "render" "2016-06-26" (V.to_display (V.Date days))
  | v -> Alcotest.failf "expected date, got %s" (V.to_display v)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_order_by_sorts =
  QCheck.Test.make ~count:50 ~name:"ORDER BY produces sorted output"
    QCheck.(list_of_size (Gen.int_range 1 30) (int_range (-1000) 1000))
    (fun xs ->
      let db = Db.create () in
      Db.load_table db
        (S.table "nums" [ S.column "n" Ty.TBigint ])
        (List.map (fun x -> [| V.Int (Int64.of_int x) |]) xs);
      let sess = Db.open_session db in
      let res = q sess "SELECT n FROM nums ORDER BY n ASC" in
      let prev = ref Int64.min_int in
      Array.for_all
        (fun row ->
          match row.(0) with
          | V.Int i ->
              let ok = Int64.compare !prev i <= 0 in
              prev := i;
              ok
          | _ -> false)
        res.Pgdb.Exec.res_rows)

let prop_distinct_unique =
  QCheck.Test.make ~count:50 ~name:"DISTINCT removes duplicates"
    QCheck.(list_of_size (Gen.int_range 1 30) (int_range 0 5))
    (fun xs ->
      let db = Db.create () in
      Db.load_table db
        (S.table "nums" [ S.column "n" Ty.TBigint ])
        (List.map (fun x -> [| V.Int (Int64.of_int x) |]) xs);
      let sess = Db.open_session db in
      let res = q sess "SELECT DISTINCT n FROM nums" in
      let seen = Hashtbl.create 8 in
      Array.for_all
        (fun row ->
          match row.(0) with
          | V.Int i ->
              if Hashtbl.mem seen i then false
              else begin
                Hashtbl.add seen i ();
                true
              end
          | _ -> false)
        res.Pgdb.Exec.res_rows)

let prop_sum_group_total =
  QCheck.Test.make ~count:50
    ~name:"sum of group sums equals global sum"
    QCheck.(list_of_size (Gen.int_range 1 30) (pair (int_range 0 3) (int_range 0 100)))
    (fun pairs ->
      let db = Db.create () in
      Db.load_table db
        (S.table "g" [ S.column "k" Ty.TBigint; S.column "v" Ty.TBigint ])
        (List.map
           (fun (k, v) -> [| V.Int (Int64.of_int k); V.Int (Int64.of_int v) |])
           pairs);
      let sess = Db.open_session db in
      let grouped = q sess "SELECT k, SUM(v) AS s FROM g GROUP BY k" in
      let total = q sess "SELECT SUM(v) FROM g" in
      let group_total =
        Array.fold_left
          (fun acc row ->
            match row.(1) with V.Int i -> Int64.add acc i | _ -> acc)
          0L grouped.Pgdb.Exec.res_rows
      in
      match (cell total 0 0, group_total) with
      | V.Int t, g -> Int64.equal t g
      | _ -> false)

let prop_sql_parser_never_crashes =
  QCheck.Test.make ~count:500 ~name:"SQL parser fails cleanly on garbage"
    QCheck.(string_gen_of_size (Gen.int_range 0 80) Gen.printable)
    (fun src ->
      match Pgdb.Sql_parser.parse src with
      | _ -> true
      | exception Pgdb.Errors.Sql_error _ -> true
      | exception e ->
          QCheck.Test.fail_reportf "unexpected exception %s on %S"
            (Printexc.to_string e) src)

let props =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_order_by_sorts; prop_distinct_unique; prop_sum_group_total;
      prop_sql_parser_never_crashes;
    ]

let () =
  Alcotest.run "pgdb"
    [
      ( "basic",
        [
          Alcotest.test_case "select all" `Quick test_select_all;
          Alcotest.test_case "where + projection" `Quick
            test_where_and_projection;
          Alcotest.test_case "expressions" `Quick test_expressions;
          Alcotest.test_case "order by / limit" `Quick test_order_by_limit;
          Alcotest.test_case "distinct" `Quick test_distinct;
          Alcotest.test_case "case and cast" `Quick test_case_and_cast;
          Alcotest.test_case "date values" `Quick test_date_values;
        ] );
      ( "nulls",
        [
          Alcotest.test_case "3VL equality" `Quick test_null_equality_3vl;
          Alcotest.test_case "null arithmetic" `Quick
            test_null_arith_propagates;
          Alcotest.test_case "coalesce" `Quick test_coalesce;
          Alcotest.test_case "count ignores null" `Quick
            test_count_ignores_null;
        ] );
      ( "aggregates",
        [
          Alcotest.test_case "group by" `Quick test_group_by;
          Alcotest.test_case "having" `Quick test_having;
          Alcotest.test_case "global aggregate" `Quick test_global_aggregate;
          Alcotest.test_case "avg" `Quick test_avg_stddev;
        ] );
      ( "joins",
        [
          Alcotest.test_case "inner join" `Quick test_inner_join;
          Alcotest.test_case "left join null padding" `Quick
            test_left_join_null_padding;
          Alcotest.test_case "as-of join pattern" `Quick
            test_asof_join_pattern;
          Alcotest.test_case "hash join null keys" `Quick
            test_hash_join_null_keys;
          Alcotest.test_case "union all" `Quick test_union_all;
        ] );
      ( "windows",
        [
          Alcotest.test_case "row_number" `Quick test_row_number;
          Alcotest.test_case "running sum" `Quick test_window_running_sum;
          Alcotest.test_case "lag" `Quick test_lag;
          Alcotest.test_case "moving frame" `Quick test_moving_window_frame;
        ] );
      ( "ddl",
        [
          Alcotest.test_case "subquery" `Quick test_subquery;
          Alcotest.test_case "temp table lifecycle" `Quick
            test_temp_table_lifecycle;
          Alcotest.test_case "create + insert" `Quick test_create_insert;
          Alcotest.test_case "view" `Quick test_view;
          Alcotest.test_case "drop" `Quick test_drop;
          Alcotest.test_case "catalog queryable" `Quick test_catalog_queryable;
        ] );
      ("errors", [ Alcotest.test_case "error codes" `Quick test_errors ]);
      ("properties", props);
    ]
