(* Plan cache tests: collision regression (same fingerprint, different
   literal classes), versioned invalidation (DDL / variable reassignment
   / session promotion), a randomized differential check against a
   cache-disabled engine, the pgdb statement cache, and the bounded
   engine error log. *)

module V = Pgdb.Value
module Db = Pgdb.Db
module S = Catalog.Schema
module Ty = Catalog.Sqltype
module QV = Qvalue.Value
module E = Hyperq.Engine
module PC = Hyperq.Plancache

let check = Alcotest.check
let tint = Alcotest.int
let tbool = Alcotest.bool

let make_db () =
  let db = Db.create () in
  Db.load_table db
    (S.table ~order_col:"hq_ord" "trades"
       [
         S.column "hq_ord" Ty.TBigint;
         S.column "Symbol" Ty.TVarchar;
         S.column "Price" Ty.TDouble;
         S.column "Size" Ty.TBigint;
       ])
    (List.mapi
       (fun i (sym, px, sz) ->
         [| V.Int (Int64.of_int i); V.Str sym; V.Float px; V.Int (Int64.of_int sz) |])
       [
         ("A", 10.0, 100);
         ("B", 20.0, 200);
         ("A", 11.0, 150);
         ("B", 21.0, 250);
         ("A", 12.0, 300);
       ]);
  db

let make_engine ?server_scope ~plan_cache () =
  let cfg = E.default_config () in
  cfg.E.plan_cache <- plan_cache;
  let backend = Hyperq.Backend.of_pgdb_session (Db.open_session (make_db ())) in
  (E.create ~config:cfg ?server_scope backend, backend)

let counter eng name =
  Obs.Metrics.counter_value
    (Obs.Metrics.counter (E.obs eng).Obs.Ctx.registry name)

let hits eng = counter eng "hq_plan_cache_hits_total"
let misses eng = counter eng "hq_plan_cache_misses_total"
let bypass eng = counter eng "hq_plan_cache_bypass_total"

let run eng q =
  match E.try_run eng q with
  | Ok r -> r.E.value
  | Error e -> Alcotest.failf "query %S failed: %s" q e

let same_value a b = Stdlib.compare a b = 0

(* run [q] on the cached engine and an identically-loaded uncached
   engine; the values must agree *)
let check_vs_uncached ~cached ~uncached q =
  let cv = run cached q and uv = run uncached q in
  if not (same_value cv uv) then
    Alcotest.failf "cache changed the answer of %S" q

(* ------------------------------------------------------------------ *)
(* Reuse and collisions                                                *)
(* ------------------------------------------------------------------ *)

(* the very first query of a shape pays the MDI catalog fetch, which
   defers template installation — warm with two runs *)
let warm eng q =
  ignore (run eng q);
  ignore (run eng q)

let test_basic_reuse () =
  let eng, _ = make_engine ~plan_cache:true () in
  let uncached, _ = make_engine ~plan_cache:false () in
  warm eng "select Price from trades where Size>100";
  let h0 = hits eng in
  check_vs_uncached ~cached:eng ~uncached "select Price from trades where Size>100";
  check_vs_uncached ~cached:eng ~uncached "select Price from trades where Size>249";
  check tint "two hits with different literals" (h0 + 2) (hits eng);
  match E.plan_cache eng with
  | None -> Alcotest.fail "plan cache should be enabled"
  | Some pc -> check tint "one shared template entry" 1 (PC.size pc)

(* queries that differ only in literal type classes share a fingerprint
   but must not share an entry *)
let test_collision_literal_classes () =
  let eng, _ = make_engine ~plan_cache:true () in
  let uncached, _ = make_engine ~plan_cache:false () in
  let long_q = "select Price from trades where Size>100" in
  let float_q = "select Price from trades where Size>100.5" in
  let neg_q = "select Price from trades where Size>-100" in
  warm eng long_q;
  warm eng float_q;
  warm eng neg_q;
  let pc = Option.get (E.plan_cache eng) in
  check tint "three entries, one per literal class" 3 (PC.size pc);
  (* every shape is now a hit — and each must keep its own answer *)
  let h0 = hits eng in
  check_vs_uncached ~cached:eng ~uncached long_q;
  check_vs_uncached ~cached:eng ~uncached float_q;
  check_vs_uncached ~cached:eng ~uncached neg_q;
  check tint "all three hit their own entry" (h0 + 3) (hits eng)

(* literal value classes with bespoke binder behaviour must bypass *)
let test_bypass_classes () =
  let eng, _ = make_engine ~plan_cache:true () in
  let b0 = bypass eng in
  ignore (run eng "select Price from trades where Size>0");
  check tbool "zero literal bypasses" true (bypass eng > b0);
  let b1 = bypass eng in
  ignore (run eng "x:1; select Price from trades where Size>100");
  check tbool "multi-statement program bypasses" true (bypass eng > b1)

(* ------------------------------------------------------------------ *)
(* Versioned invalidation                                              *)
(* ------------------------------------------------------------------ *)

let test_invalidate_ddl () =
  let eng, backend = make_engine ~plan_cache:true () in
  let uncached, _ = make_engine ~plan_cache:false () in
  let q = "select Price from trades where Size>100" in
  warm eng q;
  let h0 = hits eng in
  check_vs_uncached ~cached:eng ~uncached q;
  check tint "hit before DDL" (h0 + 1) (hits eng);
  (* DDL observed through Backend.exec bumps the catalog generation *)
  (match
     Hyperq.Backend.exec backend
       "CREATE TEMP TABLE IF NOT EXISTS t_gen (x BIGINT)"
   with
  | _ -> ());
  (match Hyperq.Backend.exec backend "DROP TABLE t_gen" with _ -> ());
  let h1 = hits eng and m1 = misses eng in
  check_vs_uncached ~cached:eng ~uncached q;
  check tint "miss after DDL" (m1 + 1) (misses eng);
  check tint "no hit after DDL" h1 (hits eng)

let test_invalidate_variable () =
  let eng, _ = make_engine ~plan_cache:true () in
  let uncached, _ = make_engine ~plan_cache:false () in
  ignore (run eng "threshold:100");
  ignore (run uncached "threshold:100");
  let q = "select Price from trades where Size>threshold" in
  warm eng q;
  let h0 = hits eng in
  check_vs_uncached ~cached:eng ~uncached q;
  check tint "hit with stable variable" (h0 + 1) (hits eng);
  (* reassigning bumps the session scope generation: the cached template
     embeds the old inlined value and must become unreachable *)
  ignore (run eng "threshold:249");
  ignore (run uncached "threshold:249");
  let h1 = hits eng and m1 = misses eng in
  check_vs_uncached ~cached:eng ~uncached q;
  check tint "miss after reassignment" (m1 + 1) (misses eng);
  check tint "no hit after reassignment" h1 (hits eng)

let test_invalidate_session_promotion () =
  let server = Hyperq.Scopes.create_server_frame () in
  let eng1, _ = make_engine ~server_scope:server ~plan_cache:true () in
  ignore (run eng1 "lvl:100");
  let q = "select Price from trades where Size>lvl" in
  warm eng1 q;
  (* closing the session promotes [lvl] to the server scope and bumps
     the server generation; a new session sharing the scope must
     re-translate, not reuse any surviving entry *)
  E.close_session eng1;
  let eng2, _ = make_engine ~server_scope:server ~plan_cache:true () in
  let uncached_server = Hyperq.Scopes.create_server_frame () in
  let uncached, _ =
    make_engine ~server_scope:uncached_server ~plan_cache:false ()
  in
  ignore (run uncached "lvl:100");
  let h0 = hits eng2 in
  check_vs_uncached ~cached:eng2 ~uncached q;
  check tint "promoted-variable query missed" h0 (hits eng2);
  check tbool "promoted-variable query translated" true (misses eng2 > 0)

(* ------------------------------------------------------------------ *)
(* Randomized differential: cached vs uncached engines, with scope and
   catalog churn interleaved                                           *)
(* ------------------------------------------------------------------ *)

let test_randomized_differential () =
  let rng = Random.State.make [| 20160626 |] in
  let eng, backend = make_engine ~plan_cache:true () in
  let uncached, ubackend = make_engine ~plan_cache:false () in
  let syms = [| "A"; "B"; "C" |] in
  let gen_query i =
    match Random.State.int rng 6 with
    | 0 ->
        Printf.sprintf "select Price from trades where Size>%d"
          (1 + Random.State.int rng 400)
    | 1 ->
        Printf.sprintf "select sum Size by Symbol from trades where Price>%f"
          (float_of_int (Random.State.int rng 20) +. 0.5)
    | 2 ->
        Printf.sprintf
          "select hi:max Price,lo:min Price from trades where Symbol=`%s"
          syms.(Random.State.int rng (Array.length syms))
    | 3 ->
        Printf.sprintf
          "select n:count Price by Symbol from trades where Size>%d,Price>%f"
          (1 + Random.State.int rng 300)
          (float_of_int (Random.State.int rng 15) +. 0.5)
    | 4 -> Printf.sprintf "select Price,Size from trades where Size>-%d"
             (1 + Random.State.int rng 50)
    | _ ->
        Printf.sprintf "select avg Price from trades where Size>%d"
          (1 + (i mod 7))
  in
  for i = 0 to 199 do
    (* occasionally churn state the generations must version *)
    (match Random.State.int rng 20 with
    | 0 ->
        let v = Random.State.int rng 500 in
        ignore (run eng (Printf.sprintf "lim:%d" v));
        ignore (run uncached (Printf.sprintf "lim:%d" v))
    | 1 ->
        List.iter
          (fun be ->
            (match
               Hyperq.Backend.exec be
                 "CREATE TEMP TABLE IF NOT EXISTS t_churn (x BIGINT)"
             with
            | _ -> ());
            match Hyperq.Backend.exec be "DROP TABLE t_churn" with _ -> ())
          [ backend; ubackend ]
    | _ -> ());
    let q = gen_query i in
    let cv = run eng q and uv = run uncached q in
    if not (same_value cv uv) then
      Alcotest.failf "divergence at query %d: %S" i q
  done;
  check tbool "workload produced cache hits" true (hits eng > 50)

(* ------------------------------------------------------------------ *)
(* pgdb statement cache (level 2)                                      *)
(* ------------------------------------------------------------------ *)

let test_stmt_cache_reuse () =
  let db = make_db () in
  let sess = Db.open_session db in
  let sql = "SELECT \"Price\" FROM trades" in
  let _, m0, _ = Db.stmt_cache_stats () in
  ignore (Db.exec sess sql);
  let h1, m1, _ = Db.stmt_cache_stats () in
  check tint "first exec parses" (m0 + 1) m1;
  ignore (Db.exec sess sql);
  let h2, m2, _ = Db.stmt_cache_stats () in
  check tint "repeat is a cache hit" (h1 + 1) h2;
  check tint "repeat does not parse" m1 m2

let test_stmt_cache_comment_keying () =
  let db = make_db () in
  let sess = Db.open_session db in
  let sql = "SELECT \"Size\" FROM trades" in
  ignore (Db.exec sess sql);
  let h0, m0, _ = Db.stmt_cache_stats () in
  (* per-query trace decoration must not defeat reuse *)
  ignore
    (Db.exec sess
       (sql ^ " /* traceparent='00-aaaa-bbbb-01' */"));
  ignore (Db.exec sess (sql ^ " /* traceparent='00-cccc-dddd-01' */"));
  let h1, m1, _ = Db.stmt_cache_stats () in
  check tint "decorated repeats hit" (h0 + 2) h1;
  check tint "decorated repeats do not parse" m0 m1;
  (* quotes inside the trailing comment (the traceparent is quoted) do
     not disable stripping *)
  (match Db.exec sess (sql ^ " /* it's quoted */") with
  | Db.Rows _ -> ()
  | Db.Complete _ -> Alcotest.fail "expected rows");
  let h2, m2, _ = Db.stmt_cache_stats () in
  check tint "quoted trailing comment still hits" (h1 + 1) h2;
  check tint "quoted trailing comment does not parse" m1 m2;
  (* a comment in the middle of the statement is part of the key *)
  ignore (Db.exec sess "SELECT /* mid */ \"Size\" FROM trades");
  let _, m3, _ = Db.stmt_cache_stats () in
  check tint "mid-statement comment is a distinct key" (m2 + 1) m3

(* ------------------------------------------------------------------ *)
(* Engine error log stays bounded (satellite: O(1) truncation)         *)
(* ------------------------------------------------------------------ *)

let test_error_log_bounded () =
  let eng, _ = make_engine ~plan_cache:false () in
  for i = 0 to 249 do
    match E.try_run eng (Printf.sprintf "select Nope%d from trades" i) with
    | Ok _ -> Alcotest.fail "expected failure"
    | Error _ -> ()
  done;
  let errors = E.recent_errors eng in
  check tbool "bounded to the documented limit" true
    (List.length errors <= 100);
  match errors with
  | (q, _) :: _ ->
      check tbool "newest first" true
        (q = "select Nope249 from trades")
  | [] -> Alcotest.fail "expected recorded errors"

(* ------------------------------------------------------------------ *)
(* Plancache module units                                              *)
(* ------------------------------------------------------------------ *)

let test_signature_classes () =
  let sig_of q =
    let an = Qlang.Fingerprint.analyze q in
    PC.signature an.Qlang.Fingerprint.a_literals
  in
  (match sig_of "select Price from trades where Size>0" with
  | None -> ()
  | Some _ -> Alcotest.fail "zero must not be cacheable");
  (match
     ( sig_of "select Price from trades where Size>5",
       sig_of "select Price from trades where Size>5.5" )
   with
  | Some (a, _), Some (b, _) ->
      check tbool "long and float literals get distinct signatures" true
        (a <> b)
  | _ -> Alcotest.fail "both shapes should be cacheable");
  match
    ( sig_of "select from trades where Symbol like \"A*\"",
      sig_of "select from trades where Symbol like \"AB\"" )
  with
  | Some (a, _), Some (b, _) ->
      check tbool "glob and plain strings get distinct signatures" true
        (a <> b)
  | _ -> Alcotest.fail "both string shapes should be cacheable"

let test_lru_eviction () =
  let evicted = ref 0 in
  let pc = PC.create ~on_evict:(fun () -> incr evicted) ~capacity:2 () in
  let key fp =
    {
      PC.k_fingerprint = fp;
      k_signature = "j+";
      k_session = 1;
      k_session_gen = 0;
      k_server_gen = 0;
      k_catalog_gen = 0;
      k_shard_gen = 0;
    }
  in
  PC.store pc (key "a") ~norm:"a" (PC.Uncacheable "test");
  PC.store pc (key "b") ~norm:"b" (PC.Uncacheable "test");
  ignore (PC.find pc (key "a"));
  (* touch a so b is the LRU victim *)
  PC.store pc (key "c") ~norm:"c" (PC.Uncacheable "test");
  check tint "capacity respected" 2 (PC.size pc);
  check tint "one eviction" 1 !evicted;
  check tbool "a survived (recently used)" true (PC.find pc (key "a") <> None);
  check tbool "b evicted" true (PC.find pc (key "b") = None)

let () =
  Alcotest.run "plancache"
    [
      ( "reuse",
        [
          Alcotest.test_case "basic reuse across literals" `Quick
            test_basic_reuse;
          Alcotest.test_case "literal-class collisions" `Quick
            test_collision_literal_classes;
          Alcotest.test_case "bespoke value classes bypass" `Quick
            test_bypass_classes;
        ] );
      ( "invalidation",
        [
          Alcotest.test_case "DDL bumps catalog generation" `Quick
            test_invalidate_ddl;
          Alcotest.test_case "variable reassignment" `Quick
            test_invalidate_variable;
          Alcotest.test_case "session promotion" `Quick
            test_invalidate_session_promotion;
        ] );
      ( "differential",
        [
          Alcotest.test_case "200-query randomized vs uncached" `Quick
            test_randomized_differential;
        ] );
      ( "stmt-cache",
        [
          Alcotest.test_case "repeat statements skip the parser" `Quick
            test_stmt_cache_reuse;
          Alcotest.test_case "trailing comment keying" `Quick
            test_stmt_cache_comment_keying;
        ] );
      ( "engine",
        [
          Alcotest.test_case "error log stays bounded" `Quick
            test_error_log_bounded;
        ] );
      ( "units",
        [
          Alcotest.test_case "signature classes" `Quick test_signature_classes;
          Alcotest.test_case "LRU eviction" `Quick test_lru_eviction;
        ] );
    ]
