(* Full-platform integration tests: QIPC bytes in -> Hyper-Q -> PG v3 bytes
   -> pgdb -> pivoted QIPC bytes out (paper Figure 1, end to end). *)

module V = Pgdb.Value
module Db = Pgdb.Db
module S = Catalog.Schema
module Ty = Catalog.Sqltype
module QV = Qvalue.Value
module QA = Qvalue.Atom
module P = Platform.Hyperq_platform

let check = Alcotest.check
let tint = Alcotest.int
let tbool = Alcotest.bool

let make_db () =
  let db = Db.create () in
  Db.load_table db
    (S.table ~order_col:"hq_ord" "trades"
       [
         S.column "hq_ord" Ty.TBigint;
         S.column "Symbol" Ty.TVarchar;
         S.column "Time" Ty.TTime;
         S.column "Price" Ty.TDouble;
         S.column "Size" Ty.TBigint;
       ])
    (List.mapi
       (fun i (sym, time, px, sz) ->
         [|
           V.Int (Int64.of_int i); V.Str sym; V.Time time; V.Float px;
           V.Int (Int64.of_int sz);
         |])
       [
         ("A", 1000, 10.0, 100);
         ("B", 2000, 20.0, 200);
         ("A", 3000, 11.0, 150);
       ]);
  db

let platform () = P.create (make_db ())

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "query failed: %s" e

let test_end_to_end_select () =
  let p = platform () in
  let c = P.Client.connect p in
  match ok (P.Client.query c "select Price from trades where Symbol=`A") with
  | QV.Table t ->
      check tint "2 rows" 2 (QV.table_length t);
      check tbool "values" true
        (QV.equal (QV.column_exn t "Price") (QV.floats [| 10.0; 11.0 |]))
  | v -> Alcotest.failf "expected table, got %s" (Qvalue.Qprint.to_string v)

let test_end_to_end_aggregate () =
  let p = platform () in
  let c = P.Client.connect p in
  match ok (P.Client.query c "select mx:max Price by Symbol from trades") with
  | QV.KTable (_, v) ->
      check tbool "grouped max" true
        (QV.equal (QV.column_exn v "mx") (QV.floats [| 11.0; 20.0 |]))
  | v -> Alcotest.failf "expected keyed table, got %s" (Qvalue.Qprint.to_string v)

let test_error_travels_as_qipc () =
  let p = platform () in
  let c = P.Client.connect p in
  match P.Client.query c "select nope from missing_table" with
  | Error e -> check tbool "error is informative" true (String.length e > 10)
  | Ok _ -> Alcotest.fail "expected an error"

let test_bad_credentials_rejected () =
  let p = platform () in
  match P.Client.connect ~user:"intruder" ~password:"guess" p with
  | exception P.Client.Client_error _ -> ()
  | _ -> Alcotest.fail "bad credentials must be rejected"

let test_globals_shared_across_connections () =
  (* server-scope variables (::) are immediately visible to other clients,
     as on a shared kdb+ server *)
  let p = platform () in
  let c1 = P.Client.connect p in
  let c2 = P.Client.connect p in
  ignore (ok (P.Client.query c1 "lim::12.5"));
  match ok (P.Client.query c2 "select Price from trades where Price<lim") with
  | QV.Table t -> check tint "filtered by shared global" 2 (QV.table_length t)
  | v -> Alcotest.failf "expected table, got %s" (Qvalue.Qprint.to_string v)

let test_session_promotion_on_disconnect () =
  let p = platform () in
  let c1 = P.Client.connect p in
  ignore (ok (P.Client.query c1 "threshold:15.0"));
  P.Client.close c1;
  let c2 = P.Client.connect p in
  match ok (P.Client.query c2 "select Price from trades where Price>threshold")
  with
  | QV.Table t -> check tint "promoted variable visible" 1 (QV.table_length t)
  | v -> Alcotest.failf "expected table, got %s" (Qvalue.Qprint.to_string v)

let test_fsm_transitions () =
  (* the XC walks its documented states for every query *)
  let p = platform () in
  let conn = P.connect p in
  (match Platform.Xc.process conn.P.xc "select Price from trades" with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  let ts = Platform.Xc.transitions conn.P.xc in
  let expect_contains name =
    check tbool (name ^ " visited") true (List.mem name ts)
  in
  expect_contains "parsing_request";
  expect_contains "awaiting_translation";
  expect_contains "awaiting_backend";
  expect_contains "translating_results";
  expect_contains "responding"

let test_function_definition_and_call_over_wire () =
  let p = platform () in
  let c = P.Client.connect p in
  ignore
    (ok
       (P.Client.query c
          "f:{[s] dt: select Price from trades where Symbol=s; :select max \
           Price from dt}"));
  match ok (P.Client.query c "f[`A]") with
  | QV.Table t ->
      check tbool "max A" true
        (QV.equal (QV.column_exn t "Price") (QV.floats [| 11.0 |]))
  | v -> Alcotest.failf "expected table, got %s" (Qvalue.Qprint.to_string v)

let test_fragmented_qipc_delivery () =
  (* bytes arriving one at a time must reassemble into whole messages *)
  let p = platform () in
  let conn = P.connect p in
  let feed_bytes s =
    let out = Buffer.create 64 in
    String.iter
      (fun c ->
        Buffer.add_string out
          (Platform.Endpoint.feed conn.P.endpoint (String.make 1 c)))
      s;
    Buffer.contents out
  in
  let hello = Qipc.Codec.encode_handshake ~user:"trader" ~password:"pwd" ~version:3 in
  let ack = feed_bytes hello in
  check tint "handshake ack" 1 (String.length ack);
  let msg =
    Qipc.Codec.encode_message
      { mt = Qipc.Codec.Sync; body = Qipc.Codec.Query "select Price from trades" }
  in
  let reply = feed_bytes msg in
  (match Qipc.Codec.decode_message reply with
  | { Qipc.Codec.body = Qipc.Codec.Value (QV.Table t); _ }, _ ->
      check tint "3 rows" 3 (QV.table_length t)
  | _ -> Alcotest.fail "expected a table reply")

let test_temp_tables_released_on_disconnect () =
  (* physical materialization creates session temp tables; disconnect must
     release them in the backend *)
  let db = make_db () in
  let config = Hyperq.Engine.default_config () in
  config.Hyperq.Engine.materialization <- `Physical;
  let p = P.create ~engine_config:(fun () -> config) db in
  ignore config;
  let c = P.Client.connect p in
  ignore (ok (P.Client.query c "dt: select Price from trades where Symbol=`A"));
  P.Client.close c;
  (* a later session must not see hq_temp_1 *)
  let sess = Db.open_session db in
  match Db.exec sess "SELECT * FROM hq_temp_1" with
  | exception Pgdb.Errors.Sql_error { code = "42P01"; _ } -> ()
  | _ -> Alcotest.fail "temp table leaked across sessions"

let test_large_result_compressed_end_to_end () =
  (* a workload-sized result crosses the 2000-byte QIPC threshold, so the
     response travels compressed and must decode transparently *)
  let d = Workload.Marketdata.generate Workload.Marketdata.small_scale in
  let db = Db.create () in
  Workload.Marketdata.load_pg db d;
  let p = P.create db in
  let c = P.Client.connect p in
  match ok (P.Client.query c "select Symbol, Time, Price, Size from trades") with
  | QV.Table t ->
      check tint "all rows across the wire" (Array.length d.Workload.Marketdata.trades)
        (QV.table_length t)
  | v -> Alcotest.failf "expected table, got %s" (Qvalue.Qprint.to_string v)

let test_async_messages_get_no_reply () =
  (* async QIPC messages execute but produce no response bytes *)
  let p = platform () in
  let conn = P.connect p in
  let hello = Qipc.Codec.encode_handshake ~user:"trader" ~password:"pwd" ~version:3 in
  ignore (Platform.Endpoint.feed conn.P.endpoint hello);
  let async_set =
    Qipc.Codec.encode_message
      { mt = Qipc.Codec.Async; body = Qipc.Codec.Query "lim:10.5" }
  in
  let reply = Platform.Endpoint.feed conn.P.endpoint async_set in
  check tint "no reply to async" 0 (String.length reply);
  (* but its side effect is visible to the next sync query *)
  let sync =
    Qipc.Codec.encode_message
      { mt = Qipc.Codec.Sync;
        body = Qipc.Codec.Query "select Price from trades where Price>lim" }
  in
  let reply = Platform.Endpoint.feed conn.P.endpoint sync in
  match Qipc.Codec.decode_message reply with
  | { Qipc.Codec.body = Qipc.Codec.Value (QV.Table t); _ }, _ ->
      check tint "filtered by async-set variable" 2 (QV.table_length t)
  | _ -> Alcotest.fail "expected table"

let test_multiple_queries_one_connection () =
  let p = platform () in
  let c = P.Client.connect p in
  for i = 1 to 10 do
    match ok (P.Client.query c "select Price from trades") with
    | QV.Table t -> check tint (Printf.sprintf "round %d" i) 3 (QV.table_length t)
    | _ -> Alcotest.fail "expected table"
  done

let () =
  Alcotest.run "platform"
    [
      ( "end-to-end",
        [
          Alcotest.test_case "select over QIPC+PGv3 bytes" `Quick
            test_end_to_end_select;
          Alcotest.test_case "aggregate over wire" `Quick
            test_end_to_end_aggregate;
          Alcotest.test_case "errors travel as QIPC" `Quick
            test_error_travels_as_qipc;
          Alcotest.test_case "auth rejection" `Quick
            test_bad_credentials_rejected;
          Alcotest.test_case "shared globals" `Quick
            test_globals_shared_across_connections;
          Alcotest.test_case "session promotion" `Quick
            test_session_promotion_on_disconnect;
          Alcotest.test_case "XC FSM transitions" `Quick test_fsm_transitions;
          Alcotest.test_case "function over wire" `Quick
            test_function_definition_and_call_over_wire;
          Alcotest.test_case "fragmented QIPC delivery" `Quick
            test_fragmented_qipc_delivery;
          Alcotest.test_case "temp tables released on disconnect" `Quick
            test_temp_tables_released_on_disconnect;
          Alcotest.test_case "large result compressed end-to-end" `Quick
            test_large_result_compressed_end_to_end;
          Alcotest.test_case "async messages" `Quick
            test_async_messages_get_no_reply;
          Alcotest.test_case "many queries per connection" `Quick
            test_multiple_queries_one_connection;
        ] );
    ]
