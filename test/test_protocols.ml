(* Byte-level tests for the QIPC and PG v3 wire protocol codecs. *)

open Qvalue
module QC = Qipc.Codec
module PC = Pgwire.Codec

let check = Alcotest.check
let tint = Alcotest.int
let tbool = Alcotest.bool
let tstr = Alcotest.string

(* ------------------------------------------------------------------ *)
(* QIPC                                                                *)
(* ------------------------------------------------------------------ *)

let roundtrip_value v =
  let msg = QC.encode_message { QC.mt = QC.Response; body = QC.Value v } in
  match QC.decode_message msg with
  | { QC.body = QC.Value v'; _ }, consumed ->
      check tint "consumed everything" (String.length msg) consumed;
      if not (Value.equal v v') then
        Alcotest.failf "roundtrip mismatch: %s vs %s" (Qprint.to_string v)
          (Qprint.to_string v')
  | _ -> Alcotest.fail "expected a value body"

let test_qipc_atoms () =
  List.iter roundtrip_value
    [
      Value.int 42;
      Value.int (-1);
      Value.float 3.5;
      Value.bool true;
      Value.sym "GOOG";
      Value.null Qtype.Long;
      Value.null Qtype.Float;
      Value.null Qtype.Sym;
      Value.date 6021;
      Value.time 34200000;
      Value.timestamp 1234567890123456789L;
    ]

let test_qipc_vectors () =
  List.iter roundtrip_value
    [
      Value.longs [| 1; 2; 3 |];
      Value.floats [| 1.5; 2.5 |];
      Value.syms [| "a"; "b"; "c" |];
      Value.bools [| true; false; true |];
      Value.string_ "hello world";
      Value.Vector (Qtype.Long, [| Atom.Long 1L; Atom.Null Qtype.Long |]);
      Value.List [| Value.int 1; Value.sym "mixed"; Value.string_ "list" |];
    ]

let test_qipc_tables () =
  roundtrip_value
    (Value.Table
       (Value.table
          [
            ("sym", Value.syms [| "a"; "b" |]);
            ("px", Value.floats [| 1.0; 2.0 |]);
            ("qty", Value.longs [| 10; 20 |]);
          ]));
  roundtrip_value
    (Value.Dict (Value.syms [| "k1"; "k2" |], Value.longs [| 1; 2 |]));
  roundtrip_value
    (Value.xkey [ "s" ]
       (Value.table
          [ ("s", Value.syms [| "a" |]); ("v", Value.longs [| 7 |]) ]))

let test_qipc_column_orientation () =
  (* Figure 5: QIPC sends a table as column vectors — the bytes for column
     c1 (both rows) precede the bytes for column c2 *)
  let t =
    Value.Table
      (Value.table
         [ ("c1", Value.longs [| 1; 2 |]); ("c2", Value.longs [| 1; 2 |]) ])
  in
  let msg = QC.encode_message { QC.mt = QC.Response; body = QC.Value t } in
  (* body: ... `c1`c2 then list of two long-vectors; each long vector holds
     1 then 2 contiguously *)
  let payload = String.sub msg 8 (String.length msg - 8) in
  let find_sub hay needle from =
    let n = String.length needle and h = String.length hay in
    let rec go i =
      if i + n > h then -1
      else if String.sub hay i n = needle then i
      else go (i + 1)
    in
    go from
  in
  let one_two =
    (* 1L then 2L little-endian back to back *)
    "\001\000\000\000\000\000\000\000\002\000\000\000\000\000\000\000"
  in
  let first = find_sub payload one_two 0 in
  check tbool "column 1 contiguous" true (first >= 0);
  let second = find_sub payload one_two (first + 1) in
  check tbool "column 2 contiguous after column 1" true (second > first)

let test_qipc_error_roundtrip () =
  let msg =
    QC.encode_message { QC.mt = QC.Response; body = QC.Error "type" }
  in
  match QC.decode_message msg with
  | { QC.body = QC.Error e; _ }, _ -> check tstr "error text" "type" e
  | _ -> Alcotest.fail "expected an error body"

let test_qipc_query_roundtrip () =
  let msg =
    QC.encode_message
      { QC.mt = QC.Sync; body = QC.Query "select from trades" }
  in
  match QC.decode_message msg with
  | { QC.mt = QC.Sync; body = QC.Query q }, _ ->
      check tstr "query text" "select from trades" q
  | _ -> Alcotest.fail "expected a query body"

let test_qipc_handshake () =
  let hello = QC.encode_handshake ~user:"trader" ~password:"pwd" ~version:3 in
  let h = QC.decode_handshake hello in
  check tstr "user" "trader" h.QC.user;
  check tstr "password" "pwd" h.QC.password;
  check tint "version" 3 h.QC.version

let test_qipc_truncated () =
  let msg = QC.encode_message { QC.mt = QC.Sync; body = QC.Query "x" } in
  let cut = String.sub msg 0 (String.length msg - 2) in
  match QC.decode_message cut with
  | exception QC.Decode_error _ -> ()
  | _ -> Alcotest.fail "truncated message must not decode"

(* ------------------------------------------------------------------ *)
(* QIPC compression                                                    *)
(* ------------------------------------------------------------------ *)

let big_table n =
  Value.Table
    (Value.table
       [
         ("sym", Value.syms (Array.init n (fun i -> Printf.sprintf "S%02d" (i mod 20))));
         ("px", Value.floats (Array.init n (fun i -> float_of_int (i mod 100) /. 4.0)));
         ("qty", Value.longs (Array.init n (fun i -> (i mod 7) * 100)));
       ])

let test_compression_kicks_in () =
  let v = big_table 5000 in
  let plain =
    QC.encode_message ~compress:false { QC.mt = QC.Response; body = QC.Value v }
  in
  let packed =
    QC.encode_message { QC.mt = QC.Response; body = QC.Value v }
  in
  check tbool "over the 2000-byte threshold" true (String.length plain > 2000);
  check tbool "compressed flag set" true (packed.[2] = '\001');
  check tbool "actually smaller" true
    (String.length packed < String.length plain);
  (* transparently decodes back to the same value *)
  match QC.decode_message packed with
  | { QC.body = QC.Value v'; _ }, consumed ->
      check tint "consumed the compressed length" (String.length packed)
        consumed;
      check tbool "roundtrip" true (Value.equal v v')
  | _ -> Alcotest.fail "expected a value body"

let test_small_messages_stay_plain () =
  let msg = QC.encode_message { QC.mt = QC.Sync; body = QC.Query "1+1" } in
  check tbool "uncompressed flag" true (msg.[2] = '\000')

let test_corrupt_compressed_rejected () =
  let v = big_table 5000 in
  let packed = QC.encode_message { QC.mt = QC.Response; body = QC.Value v } in
  (* flip a byte in the compressed stream *)
  let bad = Bytes.of_string packed in
  Bytes.set bad (String.length packed / 2) '\255';
  match QC.decode_message (Bytes.to_string bad) with
  | exception QC.Decode_error _ -> ()
  | { QC.body = QC.Value v'; _ }, _ ->
      (* a flipped byte may still decode structurally; it must at least not
         reproduce the original value *)
      check tbool "corruption detected or value changed" false
        (Value.equal v v')
  | _ -> ()

let prop_compress_roundtrip =
  QCheck.Test.make ~count:200 ~name:"compress . decompress = id"
    QCheck.(
      pair (int_range 0 3)
        (list_of_size (Gen.int_range 0 600) (int_range 0 255)))
    (fun (variant, bytes) ->
      (* synthesize message-like strings: header + semi-repetitive body *)
      let body =
        match variant with
        | 0 -> String.concat "" (List.map (fun b -> String.make 1 (Char.chr b)) bytes)
        | 1 -> String.concat "" (List.map (fun b -> String.make 4 (Char.chr (b land 0x0f))) bytes)
        | 2 -> String.make (List.length bytes * 3) 'x'
        | _ ->
            String.concat ""
              (List.map (fun b -> Printf.sprintf "row%d|" (b mod 10)) bytes)
      in
      let msg =
        let hdr = Bytes.create 8 in
        Bytes.set hdr 0 '\001';
        Bytes.set hdr 1 '\002';
        Bytes.set hdr 2 '\000';
        Bytes.set hdr 3 '\000';
        let t = 8 + String.length body in
        Bytes.set hdr 4 (Char.chr (t land 0xff));
        Bytes.set hdr 5 (Char.chr ((t lsr 8) land 0xff));
        Bytes.set hdr 6 (Char.chr ((t lsr 16) land 0xff));
        Bytes.set hdr 7 (Char.chr ((t lsr 24) land 0xff));
        Bytes.to_string hdr ^ body
      in
      match Qipc.Compress.compress msg with
      | None -> true (* incompressible is a legal outcome *)
      | Some packed -> Qipc.Compress.decompress packed = msg)

(* ------------------------------------------------------------------ *)
(* PG v3                                                               *)
(* ------------------------------------------------------------------ *)

let backend_roundtrip m =
  let bytes = PC.encode_backend m in
  let m', consumed = PC.decode_backend bytes in
  check tint "consumed" (String.length bytes) consumed;
  if m <> m' then Alcotest.fail "backend roundtrip mismatch"

let test_pg_backend_messages () =
  backend_roundtrip PC.AuthenticationOk;
  backend_roundtrip PC.AuthenticationCleartextPassword;
  backend_roundtrip (PC.AuthenticationMD5Password "s@lt");
  backend_roundtrip (PC.ParameterStatus ("server_version", "9.2"));
  backend_roundtrip (PC.ReadyForQuery 'I');
  backend_roundtrip
    (PC.RowDescription
       [
         { PC.fd_name = "sym"; fd_type_oid = 1043 };
         { PC.fd_name = "px"; fd_type_oid = 701 };
       ]);
  backend_roundtrip (PC.DataRow [ Some "GOOG"; Some "99.5"; None ]);
  backend_roundtrip (PC.CommandComplete "SELECT 5");
  backend_roundtrip (PC.ErrorResponse { code = "42P01"; message = "missing" })

let test_pg_frontend_messages () =
  let q = PC.encode_frontend (PC.Query "SELECT 1") in
  (match PC.decode_frontend q with
  | PC.Query "SELECT 1", consumed -> check tint "consumed" (String.length q) consumed
  | _ -> Alcotest.fail "query roundtrip");
  let s =
    PC.encode_frontend (PC.Startup [ ("user", "app"); ("database", "hq") ])
  in
  match PC.decode_frontend ~in_startup:true s with
  | PC.Startup params, _ ->
      check tstr "user param" "app" (List.assoc "user" params)
  | _ -> Alcotest.fail "startup roundtrip"

let test_pg_row_streaming_shape () =
  (* Figure 5: PG sends row-oriented messages, one per row *)
  let rows =
    [ PC.DataRow [ Some "1"; Some "1" ]; PC.DataRow [ Some "2"; Some "2" ] ]
  in
  let bytes = String.concat "" (List.map PC.encode_backend rows) in
  let m1, c1 = PC.decode_backend bytes in
  let rest = String.sub bytes c1 (String.length bytes - c1) in
  let m2, _ = PC.decode_backend rest in
  (match (m1, m2) with
  | PC.DataRow [ Some "1"; Some "1" ], PC.DataRow [ Some "2"; Some "2" ] -> ()
  | _ -> Alcotest.fail "row stream decode")

(* ------------------------------------------------------------------ *)
(* Wire server + client                                                *)
(* ------------------------------------------------------------------ *)

let wire_fixture ?auth ?users () =
  let db = Pgdb.Db.create () in
  Pgdb.Db.load_table db
    (Catalog.Schema.table "t"
       [
         Catalog.Schema.column "a" Catalog.Sqltype.TBigint;
         Catalog.Schema.column "b" Catalog.Sqltype.TVarchar;
       ])
    [
      [| Pgdb.Value.Int 1L; Pgdb.Value.Str "x" |];
      [| Pgdb.Value.Int 2L; Pgdb.Value.Str "y" |];
    ];
  let session = Pgdb.Db.open_session db in
  Pgwire.Server.create ?users ?auth session

let test_wire_query () =
  let server = wire_fixture () in
  let transport bytes = Pgwire.Server.feed server bytes in
  let client = Pgwire.Client.connect transport in
  match Pgwire.Client.query client "SELECT a, b FROM t ORDER BY a ASC" with
  | Ok { Pgwire.Client.rows; columns; tag } ->
      check tint "2 rows" 2 (Array.length rows);
      check tint "2 cols" 2 (List.length columns);
      check tstr "tag" "SELECT 2" tag;
      (match rows.(0).(0) with
      | Pgdb.Value.Int 1L -> ()
      | _ -> Alcotest.fail "typed decode of bigint");
      (match rows.(1).(1) with
      | Pgdb.Value.Str "y" -> ()
      | _ -> Alcotest.fail "typed decode of varchar")
  | Error e -> Alcotest.fail e

let test_wire_error () =
  let server = wire_fixture () in
  let transport bytes = Pgwire.Server.feed server bytes in
  let client = Pgwire.Client.connect transport in
  (match Pgwire.Client.query client "SELECT * FROM missing" with
  | Error e ->
      check tbool "carries sqlstate" true
        (String.length e >= 5 && String.sub e 0 5 = "42P01")
  | Ok _ -> Alcotest.fail "expected error");
  (* connection survives errors *)
  match Pgwire.Client.query client "SELECT a FROM t" with
  | Ok { Pgwire.Client.rows; _ } -> check tint "recovered" 2 (Array.length rows)
  | Error e -> Alcotest.fail e

let test_wire_md5_auth () =
  let server =
    wire_fixture ~auth:Pgwire.Server.Md5 ~users:[ ("alice", "wonder") ] ()
  in
  let transport bytes = Pgwire.Server.feed server bytes in
  let client = Pgwire.Client.connect ~user:"alice" ~password:"wonder" transport in
  (match Pgwire.Client.query client "SELECT 1 + 1" with
  | Ok { Pgwire.Client.rows; _ } -> check tint "1 row" 1 (Array.length rows)
  | Error e -> Alcotest.fail e);
  (* wrong password is rejected *)
  let server2 =
    wire_fixture ~auth:Pgwire.Server.Md5 ~users:[ ("alice", "wonder") ] ()
  in
  let transport2 bytes = Pgwire.Server.feed server2 bytes in
  match Pgwire.Client.connect ~user:"alice" ~password:"nope" transport2 with
  | exception Pgwire.Client.Protocol_error _ -> ()
  | _ -> Alcotest.fail "bad password must be rejected"

let test_wire_cleartext_auth () =
  let server =
    wire_fixture ~auth:Pgwire.Server.Cleartext ~users:[ ("bob", "pw") ] ()
  in
  let transport bytes = Pgwire.Server.feed server bytes in
  let client = Pgwire.Client.connect ~user:"bob" ~password:"pw" transport in
  match Pgwire.Client.query client "SELECT 2 * 21" with
  | Ok { Pgwire.Client.rows; _ } -> (
      match rows.(0).(0) with
      | Pgdb.Value.Int 42L -> ()
      | v -> Alcotest.failf "expected 42, got %s" (Pgdb.Value.to_display v))
  | Error e -> Alcotest.fail e

let test_wire_fragmented_delivery () =
  (* byte-at-a-time delivery exercises message reassembly *)
  let server = wire_fixture () in
  let transport bytes =
    let out = Buffer.create 64 in
    String.iter
      (fun c ->
        Buffer.add_string out (Pgwire.Server.feed server (String.make 1 c)))
      bytes;
    if bytes = "" then Buffer.add_string out (Pgwire.Server.feed server "");
    Buffer.contents out
  in
  let client = Pgwire.Client.connect transport in
  match Pgwire.Client.query client "SELECT COUNT(*) FROM t" with
  | Ok { Pgwire.Client.rows; _ } -> (
      match rows.(0).(0) with
      | Pgdb.Value.Int 2L -> ()
      | v -> Alcotest.failf "expected 2, got %s" (Pgdb.Value.to_display v))
  | Error e -> Alcotest.fail e

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let gen_atom : Atom.t QCheck.Gen.t =
  QCheck.Gen.(
    oneof
      [
        map (fun b -> Atom.Bool b) bool;
        map (fun i -> Atom.Long (Int64.of_int i)) (int_range (-10000) 10000);
        map (fun f -> Atom.Float f) (float_bound_exclusive 1e6);
        map (fun s -> Atom.Sym s) (string_size ~gen:(char_range 'a' 'z') (int_range 0 8));
        return (Atom.Null Qtype.Long);
        return (Atom.Null Qtype.Float);
        map (fun d -> Atom.Date d) (int_range (-3000) 9000);
        map (fun t -> Atom.Time t) (int_range 0 86399999);
      ])

let gen_value : Value.t QCheck.Gen.t =
  QCheck.Gen.(
    oneof
      [
        map (fun a -> Value.Atom a) gen_atom;
        map
          (fun atoms -> Value.vector_of_atoms (Array.of_list atoms))
          (list_size (int_range 0 20) gen_atom);
        map
          (fun (names, len) ->
            let names = List.sort_uniq String.compare names in
            let names = if names = [] then [ "c" ] else names in
            Value.Table
              (Value.table
                 (List.map
                    (fun n ->
                      (n, Value.longs (Array.init len (fun i -> i))))
                    names)))
          (pair
             (list_size (int_range 1 4)
                (string_size ~gen:(char_range 'a' 'z') (int_range 1 5)))
             (int_range 0 10));
      ])

let prop_qipc_roundtrip =
  QCheck.Test.make ~count:300 ~name:"QIPC decode . encode = id"
    (QCheck.make gen_value) (fun v ->
      let msg = QC.encode_message { QC.mt = QC.Response; body = QC.Value v } in
      match QC.decode_message msg with
      | { QC.body = QC.Value v'; _ }, consumed ->
          consumed = String.length msg && Value.equal v v'
      | _ -> false)

let prop_pg_datarow_roundtrip =
  QCheck.Test.make ~count:300 ~name:"PGv3 DataRow roundtrip"
    QCheck.(list_of_size (Gen.int_range 0 10) (option (string_small_of (Gen.char_range 'a' 'z'))))
    (fun cells ->
      let bytes = PC.encode_backend (PC.DataRow cells) in
      match PC.decode_backend bytes with
      | PC.DataRow cells', consumed ->
          cells = cells' && consumed = String.length bytes
      | _ -> false)

let props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_qipc_roundtrip; prop_pg_datarow_roundtrip; prop_compress_roundtrip ]

let () =
  Alcotest.run "protocols"
    [
      ( "qipc",
        [
          Alcotest.test_case "atoms" `Quick test_qipc_atoms;
          Alcotest.test_case "vectors" `Quick test_qipc_vectors;
          Alcotest.test_case "tables and dicts" `Quick test_qipc_tables;
          Alcotest.test_case "column orientation (Fig 5)" `Quick
            test_qipc_column_orientation;
          Alcotest.test_case "error body" `Quick test_qipc_error_roundtrip;
          Alcotest.test_case "query body" `Quick test_qipc_query_roundtrip;
          Alcotest.test_case "handshake" `Quick test_qipc_handshake;
          Alcotest.test_case "truncated input" `Quick test_qipc_truncated;
        ] );
      ( "compression",
        [
          Alcotest.test_case "large messages compress" `Quick
            test_compression_kicks_in;
          Alcotest.test_case "small messages stay plain" `Quick
            test_small_messages_stay_plain;
          Alcotest.test_case "corruption rejected" `Quick
            test_corrupt_compressed_rejected;
        ] );
      ( "pgv3",
        [
          Alcotest.test_case "backend messages" `Quick
            test_pg_backend_messages;
          Alcotest.test_case "frontend messages" `Quick
            test_pg_frontend_messages;
          Alcotest.test_case "row streaming (Fig 5)" `Quick
            test_pg_row_streaming_shape;
        ] );
      ( "wire",
        [
          Alcotest.test_case "query over wire" `Quick test_wire_query;
          Alcotest.test_case "error over wire" `Quick test_wire_error;
          Alcotest.test_case "md5 auth" `Quick test_wire_md5_auth;
          Alcotest.test_case "cleartext auth" `Quick test_wire_cleartext_auth;
          Alcotest.test_case "fragmented delivery" `Quick
            test_wire_fragmented_delivery;
        ] );
      ("properties", props);
    ]
