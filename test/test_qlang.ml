(* Unit and property tests for the Q lexer and parser (lib/qlang). *)

open Qlang

let check = Alcotest.check
let tstr = Alcotest.string
let tint = Alcotest.int
let tbool = Alcotest.bool

let parse = Parser.parse_expression
let show e = Ast.to_string e

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)
(* ------------------------------------------------------------------ *)

let toks src =
  Lexer.tokenize src |> List.map Token.to_string |> String.concat " "

let test_lex_literals () =
  check tstr "longs" "42 <eof>" (toks "42");
  check tstr "negative" "-7 <eof>" (toks "-7");
  check tstr "float" "2.5 <eof>" (toks "2.5");
  check tstr "vector merge" "1 2 3 <eof>" (toks "1 2 3");
  check tstr "bool" "1b <eof>" (toks "1b");
  check tstr "bool vector" "1b 0b 1b <eof>" (toks "101b");
  check tstr "null long" "0N <eof>" (toks "0N");
  check tstr "null float" "0n <eof>" (toks "0n");
  check tstr "date" "2016.06.26 <eof>" (toks "2016.06.26");
  check tstr "time" "09:30:00.000 <eof>" (toks "09:30:00.000");
  check tstr "symbols" "`a`b`c <eof>" (toks "`a`b`c");
  check tstr "null symbol" "` <eof>" (toks "`");
  check tstr "string" "\"hi\" <eof>" (toks "\"hi\"")

let test_lex_minus_disambiguation () =
  (* x-1 is subtraction; (-1) is a literal; 3*-1 is a literal *)
  check tstr "x-1" "x - 1 <eof>" (toks "x-1");
  check tstr "(-1)" "( -1 ) <eof>" (toks "(-1)");
  check tstr "3*-1" "3 * -1 <eof>" (toks "3*-1");
  check tstr "1 -2 merges" "1 -2 <eof>" (toks "1 -2")

let test_lex_comments_and_adverbs () =
  (* glued slash is the over adverb; spaced slash is a comment *)
  check tstr "over" "+ / x <eof>" (toks "+/x");
  check tstr "comment" "x <eof>" (toks "x / this is a comment");
  check tstr "each" "f ' x <eof>" (toks "f'x");
  check tstr "each-left" "x \\: y <eof>" (toks "x\\:y");
  check tstr "each-right" "x /: y <eof>" (toks "x/:y")

let test_lex_newline_statements () =
  check tstr "newline splits" "a : 1 ; b : 2 <eof>" (toks "a:1\nb:2");
  (* newlines inside brackets do not split *)
  check tstr "no split in parens" "( 1 ; 2 ) <eof>" (toks "(1;\n2)")

let test_lex_strings_and_escapes () =
  (match Lexer.tokenize {|"a\"b\n"|} with
  | [ Token.Str s; Token.Eof ] -> check tstr "escapes" "a\"b\n" s
  | ts ->
      Alcotest.failf "unexpected: %s"
        (String.concat " " (List.map Token.to_string ts)));
  (* single-char strings become char atoms at parse time *)
  match parse {|"x"|} with
  | Ast.Lit (Ast.LAtom (Qvalue.Atom.Char 'x')) -> ()
  | e -> Alcotest.failf "unexpected: %s" (show e)

let test_lex_scientific_and_suffixes () =
  (match Lexer.tokenize "1.5e3" with
  | [ Token.Num (Qvalue.Atom.Float f); Token.Eof ] ->
      check (Alcotest.float 1e-9) "exponent" 1500.0 f
  | _ -> Alcotest.fail "scientific notation");
  (match Lexer.tokenize "2f" with
  | [ Token.Num (Qvalue.Atom.Float f); Token.Eof ] ->
      check (Alcotest.float 1e-9) "f suffix" 2.0 f
  | _ -> Alcotest.fail "float suffix");
  match Lexer.tokenize "3j" with
  | [ Token.Num (Qvalue.Atom.Long 3L); Token.Eof ] -> ()
  | _ -> Alcotest.fail "long suffix"

let test_lex_infinities () =
  match Lexer.tokenize "0w" with
  | [ Token.Num (Qvalue.Atom.Float f); Token.Eof ] ->
      check tbool "positive infinity" true (f = Float.infinity)
  | _ -> Alcotest.fail "0w"

let test_lex_timestamp () =
  match Lexer.tokenize "2016.06.26D09:30:00" with
  | [ Token.Num (Qvalue.Atom.Timestamp _); Token.Eof ] -> ()
  | ts ->
      Alcotest.failf "expected timestamp, got %s"
        (String.concat " " (List.map Token.to_string ts))

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

let test_parse_right_to_left () =
  (* no precedence: 2*3+4 parses as 2*(3+4) *)
  (match parse "2*3+4" with
  | Ast.App2 (Ast.Verb "*", Ast.Lit _, Ast.App2 (Ast.Verb "+", Ast.Lit _, Ast.Lit _)) -> ()
  | e -> Alcotest.failf "unexpected: %s" (show e));
  (* a leading verb applies monadically *)
  match parse "- x" with
  | Ast.App1 (Ast.Verb "-", Ast.Var "x") -> ()
  | e -> Alcotest.failf "unexpected: %s" (show e)

let test_parse_juxtaposition () =
  (* count t applies count to t *)
  match parse "count t" with
  | Ast.App1 (Ast.Var "count", Ast.Var "t") -> ()
  | e -> Alcotest.failf "unexpected: %s" (show e)

let test_parse_assignment () =
  (match parse "x:1" with
  | Ast.Assign ("x", Ast.Lit (Ast.LAtom (Qvalue.Atom.Long 1L))) -> ()
  | e -> Alcotest.failf "unexpected: %s" (show e));
  match parse "x::2" with
  | Ast.GlobalAssign ("x", _) -> ()
  | e -> Alcotest.failf "unexpected: %s" (show e)

let test_parse_application () =
  (match parse "f[1;2]" with
  | Ast.Apply (Ast.Var "f", [ _; _ ]) -> ()
  | e -> Alcotest.failf "unexpected: %s" (show e));
  match parse "aj[`Symbol`Time; trades; quotes]" with
  | Ast.Apply (Ast.Var "aj", [ Ast.Lit (Ast.LVector _); Ast.Var "trades"; Ast.Var "quotes" ]) -> ()
  | e -> Alcotest.failf "unexpected: %s" (show e)

let test_parse_lambda () =
  match parse "{[a;b] a+b}" with
  | Ast.Lambda { params = [ "a"; "b" ]; body = [ Ast.App2 (Ast.Verb "+", Ast.Var "a", Ast.Var "b") ]; _ } -> ()
  | e -> Alcotest.failf "unexpected: %s" (show e)

let test_parse_lambda_return () =
  match parse "{[x] :x+1}" with
  | Ast.Lambda { body = [ Ast.Return _ ]; _ } -> ()
  | e -> Alcotest.failf "unexpected: %s" (show e)

let test_parse_select () =
  match parse "select Price from trades where Date=d, Symbol in s" with
  | Ast.Sql { op = Ast.Select; cols = [ (None, Ast.Var "Price") ];
              by = []; from = Ast.Var "trades"; filters = [ _; _ ] } -> ()
  | e -> Alcotest.failf "unexpected: %s" (show e)

let test_parse_select_by () =
  match parse "select mx:max Price by Symbol from trades" with
  | Ast.Sql { op = Ast.Select;
              cols = [ (Some "mx", Ast.App1 (Ast.Var "max", Ast.Var "Price")) ];
              by = [ (None, Ast.Var "Symbol") ]; _ } -> ()
  | e -> Alcotest.failf "unexpected: %s" (show e)

let test_parse_select_no_cols () =
  match parse "select from trades" with
  | Ast.Sql { op = Ast.Select; cols = []; _ } -> ()
  | e -> Alcotest.failf "unexpected: %s" (show e)

let test_parse_exec_update_delete () =
  (match parse "exec Price from trades" with
  | Ast.Sql { op = Ast.Exec; _ } -> ()
  | e -> Alcotest.failf "unexpected: %s" (show e));
  (match parse "update px:2*Price from trades" with
  | Ast.Sql { op = Ast.Update; _ } -> ()
  | e -> Alcotest.failf "unexpected: %s" (show e));
  match parse "delete from trades where Price<0" with
  | Ast.Sql { op = Ast.Delete; filters = [ _ ]; _ } -> ()
  | e -> Alcotest.failf "unexpected: %s" (show e)

let test_parse_paper_example1 () =
  (* the point-in-time query from the paper's Example 1 *)
  let q =
    "aj[`Symbol`Time;\n\
    \   select Price from trades\n\
    \   where Date=SOMEDATE, Symbol in SYMLIST;\n\
    \   select Symbol, Time, Bid, Ask from quotes\n\
    \   where Date=SOMEDATE]"
  in
  match parse q with
  | Ast.Apply (Ast.Var "aj", [ _; Ast.Sql _; Ast.Sql _ ]) -> ()
  | e -> Alcotest.failf "unexpected: %s" (show e)

let test_parse_paper_example3 () =
  (* function definition with local variable and return (Example 3) *)
  let src =
    "f:{[Sym] dt: select Price from trades where Symbol=Sym; :select max \
     Price from dt}"
  in
  match parse src with
  | Ast.Assign ("f", Ast.Lambda { params = [ "Sym" ]; body = [ Ast.Assign ("dt", Ast.Sql _); Ast.Return (Ast.Sql _) ]; _ }) -> ()
  | e -> Alcotest.failf "unexpected: %s" (show e)

let test_parse_cond_and_control () =
  (match parse "$[x>0;1;-1]" with
  | Ast.Cond [ _; _; _ ] -> ()
  | e -> Alcotest.failf "unexpected: %s" (show e));
  match parse "if[x>0;y:1]" with
  | Ast.Control ("if", [ _; _ ]) -> ()
  | e -> Alcotest.failf "unexpected: %s" (show e)

let test_parse_table_literal () =
  (match parse "([] a:1 2; b:`x`y)" with
  | Ast.TableLit ([], [ ("a", _); ("b", _) ]) -> ()
  | e -> Alcotest.failf "unexpected: %s" (show e));
  match parse "([s:`a`b] v:1 2)" with
  | Ast.TableLit ([ ("s", _) ], [ ("v", _) ]) -> ()
  | e -> Alcotest.failf "unexpected: %s" (show e)

let test_parse_list_literal () =
  (match parse "(1;2;3)" with
  | Ast.ListLit [ _; _; _ ] -> ()
  | e -> Alcotest.failf "unexpected: %s" (show e));
  (* single parens are grouping, not a list *)
  match parse "(1+2)" with
  | Ast.App2 _ -> ()
  | e -> Alcotest.failf "unexpected: %s" (show e)

let test_parse_adverbs () =
  (match parse "+/1 2 3" with
  | Ast.App1 (Ast.AdverbApp (Ast.Verb "+", Ast.Over), _) -> ()
  | e -> Alcotest.failf "unexpected: %s" (show e));
  match parse "f each x" with
  | Ast.App2 (Ast.Verb "each", Ast.Var "f", Ast.Var "x") -> ()
  | e -> Alcotest.failf "unexpected: %s" (show e)

let test_parse_infix_names () =
  match parse "Symbol in s" with
  | Ast.App2 (Ast.Verb "in", Ast.Var "Symbol", Ast.Var "s") -> ()
  | e -> Alcotest.failf "unexpected: %s" (show e)

let test_parse_program () =
  let stmts = Parser.parse_program "a:1\nb:2\na+b" in
  check tint "3 statements" 3 (List.length stmts)

let test_parse_verb_as_value () =
  match parse "f: +" with
  | Ast.Assign ("f", Ast.Verb "+") -> ()
  | e -> Alcotest.failf "unexpected: %s" (show e)

(* ------------------------------------------------------------------ *)
(* Properties: print/reparse round trip                                *)
(* ------------------------------------------------------------------ *)

(* generator for random well-formed expressions *)
let rec gen_expr depth =
  let open QCheck.Gen in
  if depth = 0 then
    oneof
      [
        map (fun i -> Ast.Lit (Ast.LAtom (Qvalue.Atom.Long (Int64.of_int i)))) (int_range 0 100);
        map (fun s -> Ast.Var s) (oneofl [ "x"; "y"; "trades"; "px" ]);
        map (fun s -> Ast.Lit (Ast.LAtom (Qvalue.Atom.Sym s))) (oneofl [ "a"; "GOOG" ]);
      ]
  else
    oneof
      [
        (let* v = oneofl [ "+"; "-"; "*"; "%" ] in
         let* a = gen_expr (depth - 1) in
         let* b = gen_expr (depth - 1) in
         return (Ast.App2 (Ast.Verb v, a, b)));
        (let* f = oneofl [ "count"; "sum"; "max" ] in
         let* a = gen_expr (depth - 1) in
         return (Ast.App1 (Ast.Var f, a)));
        (let* a = gen_expr (depth - 1) in
         let* b = gen_expr (depth - 1) in
         return (Ast.Apply (Ast.Var "f", [ a; b ])));
        gen_expr 0;
      ]

let prop_roundtrip =
  QCheck.Test.make ~count:300 ~name:"print/reparse preserves printed form"
    (QCheck.make (gen_expr 3)) (fun e ->
      let s = Ast.to_string e in
      let s' = Ast.to_string (parse s) in
      s = s')

(* fuzz: arbitrary input must either parse or raise the module's own
   error exceptions — never assert failures or Match_failure *)
let prop_parser_never_crashes =
  QCheck.Test.make ~count:500 ~name:"parser fails cleanly on garbage"
    QCheck.(string_gen_of_size (Gen.int_range 0 60) Gen.printable)
    (fun src ->
      match Parser.parse_program src with
      | _ -> true
      | exception Lexer.Error _ -> true
      | exception Parser.Error _ -> true
      | exception e ->
          QCheck.Test.fail_reportf "unexpected exception %s on %S"
            (Printexc.to_string e) src)

let prop_parser_never_crashes_qish =
  (* q-shaped fuzz: random splices of plausible tokens *)
  QCheck.Test.make ~count:500 ~name:"parser fails cleanly on q-like soup"
    QCheck.(
      list_of_size (Gen.int_range 1 15)
        (oneofl
           [ "select"; "from"; "where"; "by"; "+"; "-"; "`a"; "1 2"; "("; ")";
             "["; "]"; "{"; "}"; ";"; "x"; ":"; "aj"; "0N"; "\""; "'"; "/"; "," ]))
    (fun toks ->
      let src = String.concat " " toks in
      match Parser.parse_program src with
      | _ -> true
      | exception Lexer.Error _ -> true
      | exception Parser.Error _ -> true
      | exception e ->
          QCheck.Test.fail_reportf "unexpected exception %s on %S"
            (Printexc.to_string e) src)

let props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_roundtrip; prop_parser_never_crashes; prop_parser_never_crashes_qish ]

let () =
  Alcotest.run "qlang"
    [
      ( "lexer",
        [
          Alcotest.test_case "literals" `Quick test_lex_literals;
          Alcotest.test_case "minus disambiguation" `Quick
            test_lex_minus_disambiguation;
          Alcotest.test_case "comments and adverbs" `Quick
            test_lex_comments_and_adverbs;
          Alcotest.test_case "newline statements" `Quick
            test_lex_newline_statements;
          Alcotest.test_case "strings and escapes" `Quick
            test_lex_strings_and_escapes;
          Alcotest.test_case "scientific and suffixes" `Quick
            test_lex_scientific_and_suffixes;
          Alcotest.test_case "infinities" `Quick test_lex_infinities;
          Alcotest.test_case "timestamp" `Quick test_lex_timestamp;
        ] );
      ( "parser",
        [
          Alcotest.test_case "right-to-left" `Quick test_parse_right_to_left;
          Alcotest.test_case "juxtaposition" `Quick test_parse_juxtaposition;
          Alcotest.test_case "assignment" `Quick test_parse_assignment;
          Alcotest.test_case "application" `Quick test_parse_application;
          Alcotest.test_case "lambda" `Quick test_parse_lambda;
          Alcotest.test_case "lambda return" `Quick test_parse_lambda_return;
          Alcotest.test_case "select" `Quick test_parse_select;
          Alcotest.test_case "select by" `Quick test_parse_select_by;
          Alcotest.test_case "select no cols" `Quick test_parse_select_no_cols;
          Alcotest.test_case "exec/update/delete" `Quick
            test_parse_exec_update_delete;
          Alcotest.test_case "paper example 1 (aj)" `Quick
            test_parse_paper_example1;
          Alcotest.test_case "paper example 3 (function)" `Quick
            test_parse_paper_example3;
          Alcotest.test_case "cond and control" `Quick
            test_parse_cond_and_control;
          Alcotest.test_case "table literal" `Quick test_parse_table_literal;
          Alcotest.test_case "list literal" `Quick test_parse_list_literal;
          Alcotest.test_case "adverbs" `Quick test_parse_adverbs;
          Alcotest.test_case "infix names" `Quick test_parse_infix_names;
          Alcotest.test_case "program" `Quick test_parse_program;
          Alcotest.test_case "verb as value" `Quick test_parse_verb_as_value;
        ] );
      ("properties", props);
    ]
