(* Unit and property tests for the Q data model (lib/qvalue). *)

open Qvalue

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int
let tstr = Alcotest.string

(* ------------------------------------------------------------------ *)
(* Atoms                                                               *)
(* ------------------------------------------------------------------ *)

let test_null_equality () =
  (* Q two-valued logic: nulls compare equal *)
  check tbool "long nulls equal" true
    (Atom.equal (Atom.Null Qtype.Long) (Atom.Null Qtype.Long));
  check tbool "cross-type nulls equal" true
    (Atom.equal (Atom.Null Qtype.Long) (Atom.Null Qtype.Float));
  check tbool "null < value" true
    (Atom.compare (Atom.Null Qtype.Long) (Atom.Long Int64.min_int) < 0);
  (* the empty symbol IS the null symbol in kdb+ *)
  check tbool "empty symbol is null" true
    (Atom.equal (Atom.Null Qtype.Sym) (Atom.Sym ""));
  check tbool "non-empty symbol is not null" false
    (Atom.equal (Atom.Null Qtype.Sym) (Atom.Sym "x"))

let test_null_propagation () =
  let n = Atom.Null Qtype.Long in
  check tbool "null + 1 is null" true (Atom.is_null (Atom.add n (Atom.Long 1L)));
  check tbool "1 - null is null" true (Atom.is_null (Atom.sub (Atom.Long 1L) n));
  check tbool "null * null is null" true (Atom.is_null (Atom.mul n n));
  check tbool "x % 0 is null" true
    (Atom.is_null (Atom.div (Atom.Long 4L) (Atom.Long 0L)))

let test_arith_promotion () =
  (match Atom.add (Atom.Long 1L) (Atom.Float 0.5) with
  | Atom.Float f -> check (Alcotest.float 1e-9) "1+0.5" 1.5 f
  | a -> Alcotest.failf "expected float, got %s" (Atom.to_string a));
  (match Atom.add (Atom.Bool true) (Atom.Bool true) with
  | Atom.Long i -> check tint "1b+1b" 2 (Int64.to_int i)
  | a -> Alcotest.failf "expected long, got %s" (Atom.to_string a));
  (* Q division is always float *)
  match Atom.div (Atom.Long 3L) (Atom.Long 2L) with
  | Atom.Float f -> check (Alcotest.float 1e-9) "3%2" 1.5 f
  | a -> Alcotest.failf "expected float, got %s" (Atom.to_string a)

let test_date_arith () =
  let d = Atom.Date (Atom.date_of_ymd 2016 6 26) in
  (match Atom.add d (Atom.Long 5L) with
  | Atom.Date d' ->
      check tstr "date+5" "2016.07.01" (Atom.to_string (Atom.Date d'))
  | a -> Alcotest.failf "expected date, got %s" (Atom.to_string a));
  match Atom.sub d d with
  | Atom.Long i -> check tint "date-date" 0 (Int64.to_int i)
  | a -> Alcotest.failf "expected long, got %s" (Atom.to_string a)

let test_date_roundtrip () =
  List.iter
    (fun (y, m, d) ->
      let days = Atom.date_of_ymd y m d in
      let y', m', d' = Atom.ymd_of_date days in
      check (Alcotest.triple tint tint tint)
        (Printf.sprintf "%04d.%02d.%02d" y m d)
        (y, m, d) (y', m', d'))
    [
      (2000, 1, 1); (2000, 2, 29); (2016, 6, 26); (1999, 12, 31); (1996, 2, 29);
      (2100, 3, 1); (1970, 1, 1); (2024, 12, 31);
    ]

let test_atom_printing () =
  check tstr "long" "42" (Atom.to_string (Atom.Long 42L));
  check tstr "float" "2.5" (Atom.to_string (Atom.Float 2.5));
  check tstr "whole float" "3.0" (Atom.to_string (Atom.Float 3.0));
  check tstr "sym" "`GOOG" (Atom.to_string (Atom.Sym "GOOG"));
  check tstr "bool" "1b" (Atom.to_string (Atom.Bool true));
  check tstr "null long" "0N" (Atom.to_string (Atom.Null Qtype.Long));
  check tstr "time" "09:30:00.000" (Atom.to_string (Atom.Time 34200000));
  check tstr "date" "2016.06.26"
    (Atom.to_string (Atom.Date (Atom.date_of_ymd 2016 6 26)))

(* ------------------------------------------------------------------ *)
(* Values                                                              *)
(* ------------------------------------------------------------------ *)

let test_vector_inference () =
  let v = Value.of_values [| Value.int 1; Value.int 2; Value.int 3 |] in
  (match v with
  | Value.Vector (Qtype.Long, _) -> ()
  | _ -> Alcotest.fail "expected long vector");
  let mixed = Value.of_values [| Value.int 1; Value.sym "a" |] in
  match mixed with
  | Value.List _ -> ()
  | _ -> Alcotest.fail "expected general list"

let test_til_take_drop () =
  let v = Value.til 5 in
  check tint "count til 5" 5 (Value.length v);
  check tbool "2#til 5" true
    (Value.equal (Value.take 2 v) (Value.longs [| 0; 1 |]));
  check tbool "-2#til 5" true
    (Value.equal (Value.take (-2) v) (Value.longs [| 3; 4 |]));
  check tbool "7#til 3 cycles" true
    (Value.equal (Value.take 7 (Value.til 3))
       (Value.longs [| 0; 1; 2; 0; 1; 2; 0 |]));
  check tbool "-5#til 3 cycles" true
    (Value.equal (Value.take (-5) (Value.til 3))
       (Value.longs [| 1; 2; 0; 1; 2 |]));
  check tbool "2_til 5" true
    (Value.equal (Value.drop 2 v) (Value.longs [| 2; 3; 4 |]));
  check tbool "-2_til 5" true
    (Value.equal (Value.drop (-2) v) (Value.longs [| 0; 1; 2 |]))

let test_where () =
  let b = Value.bools [| true; false; true; false; true |] in
  check tbool "where 10101b" true
    (Value.equal (Value.where_ b) (Value.longs [| 0; 2; 4 |]))

let test_sort_grade () =
  let v = Value.longs [| 3; 1; 2 |] in
  check tbool "asc" true (Value.equal (Value.asc v) (Value.longs [| 1; 2; 3 |]));
  check tbool "desc" true
    (Value.equal (Value.desc v) (Value.longs [| 3; 2; 1 |]));
  (* grading is stable *)
  let dup = Value.longs [| 2; 1; 2; 1 |] in
  let g = Value.grade_up dup in
  check (Alcotest.array tint) "stable grade" [| 1; 3; 0; 2 |] g

let test_distinct_group () =
  let v = Value.syms [| "a"; "b"; "a"; "c"; "b" |] in
  check tbool "distinct" true
    (Value.equal (Value.distinct v) (Value.syms [| "a"; "b"; "c" |]));
  match Value.group v with
  | Value.Dict (k, vals) ->
      check tbool "group keys" true
        (Value.equal k (Value.syms [| "a"; "b"; "c" |]));
      check tbool "group a-indices" true
        (Value.equal (Value.index vals 0) (Value.longs [| 0; 2 |]))
  | _ -> Alcotest.fail "group should give a dict"

let test_table_basics () =
  let t =
    Value.table
      [
        ("sym", Value.syms [| "a"; "b"; "a" |]);
        ("px", Value.floats [| 1.0; 2.0; 3.0 |]);
      ]
  in
  check tint "row count" 3 (Value.table_length t);
  check tbool "column lookup" true
    (Value.equal (Value.column_exn t "px") (Value.floats [| 1.0; 2.0; 3.0 |]));
  let filtered = Value.filter_table t [| 0; 2 |] in
  check tint "filtered rows" 2 (Value.table_length filtered);
  check tbool "filtered col" true
    (Value.equal
       (Value.column_exn filtered "px")
       (Value.floats [| 1.0; 3.0 |]))

let test_table_atom_broadcast () =
  let t = Value.table [ ("a", Value.til 3); ("b", Value.int 7) ] in
  check tbool "broadcast column" true
    (Value.equal (Value.column_exn t "b") (Value.longs [| 7; 7; 7 |]))

let test_flip_roundtrip () =
  let t =
    Value.Table (Value.table [ ("a", Value.til 2); ("b", Value.syms [| "x"; "y" |]) ])
  in
  check tbool "flip flip = id" true (Value.equal (Value.flip (Value.flip t)) t)

let test_xkey () =
  let t =
    Value.table
      [ ("k", Value.syms [| "a"; "b" |]); ("v", Value.longs [| 1; 2 |]) ]
  in
  match Value.xkey [ "k" ] t with
  | Value.KTable (kt, vt) ->
      check (Alcotest.array tstr) "key cols" [| "k" |] kt.Value.cols;
      check (Alcotest.array tstr) "val cols" [| "v" |] vt.Value.cols
  | _ -> Alcotest.fail "xkey should give a keyed table"

let test_dict_ops () =
  let d =
    Value.Dict (Value.syms [| "a"; "b" |], Value.longs [| 1; 2 |])
  in
  (match d with
  | Value.Dict (k, v) ->
      check tbool "lookup b" true
        (Value.equal (Value.dict_lookup k v (Value.sym "b")) (Value.int 2));
      check tbool "lookup missing is null" true
        (match Value.dict_lookup k v (Value.sym "zz") with
        | Value.Atom a -> Atom.is_null a
        | _ -> false);
      (match Value.dict_upsert k v (Value.sym "c") (Value.int 3) with
      | Value.Dict (k', _) -> check tint "upsert appends" 3 (Value.length k')
      | _ -> Alcotest.fail "upsert should give dict")
  | _ -> assert false);
  ()

let test_type_codes () =
  check tint "long atom" (-7) (Value.type_code (Value.int 1));
  check tint "long vector" 7 (Value.type_code (Value.til 3));
  check tint "table" 98
    (Value.type_code (Value.Table (Value.table [ ("a", Value.til 1) ])));
  check tint "general list" 0
    (Value.type_code (Value.List [| Value.int 1; Value.sym "s" |]))

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let atom_gen : Atom.t QCheck.arbitrary =
  QCheck.(
    oneof
      [
        map (fun b -> Atom.Bool b) bool;
        map (fun i -> Atom.Long (Int64.of_int i)) small_signed_int;
        map (fun f -> Atom.Float f) (float_bound_exclusive 1000.0);
        map (fun s -> Atom.Sym s) (string_small_of (Gen.char_range 'a' 'z'));
        always (Atom.Null Qtype.Long);
        always (Atom.Null Qtype.Float);
      ])

let prop_compare_total_order =
  QCheck.Test.make ~count:500 ~name:"atom compare is antisymmetric"
    (QCheck.pair atom_gen atom_gen) (fun (a, b) ->
      let c1 = Atom.compare a b and c2 = Atom.compare b a in
      (c1 = 0 && c2 = 0) || (c1 < 0 && c2 > 0) || (c1 > 0 && c2 < 0))

let prop_equal_reflexive =
  QCheck.Test.make ~count:500 ~name:"atom equality is reflexive (incl. nulls)"
    atom_gen (fun a -> Atom.equal a a)

let prop_take_length =
  QCheck.Test.make ~count:200 ~name:"take yields requested length"
    QCheck.(pair (int_range (-20) 20) (int_range 1 30))
    (fun (n, len) ->
      let v = Value.til len in
      Value.length (Value.take n v) = abs n)

let prop_rev_involution =
  QCheck.Test.make ~count:200 ~name:"reverse is an involution"
    QCheck.(list_of_size (Gen.int_range 0 20) small_signed_int)
    (fun xs ->
      let v = Value.longs (Array.of_list xs) in
      Value.equal (Value.rev (Value.rev v)) v)

let prop_asc_sorted =
  QCheck.Test.make ~count:200 ~name:"asc yields ascending order"
    QCheck.(list_of_size (Gen.int_range 0 30) small_signed_int)
    (fun xs ->
      let sorted = Value.asc (Value.longs (Array.of_list xs)) in
      let atoms = Value.atoms_exn sorted in
      let ok = ref true in
      for i = 0 to Array.length atoms - 2 do
        if Atom.compare atoms.(i) atoms.(i + 1) > 0 then ok := false
      done;
      !ok)

let prop_distinct_idempotent =
  QCheck.Test.make ~count:200 ~name:"distinct is idempotent"
    QCheck.(list_of_size (Gen.int_range 0 20) (int_range 0 5))
    (fun xs ->
      let v = Value.longs (Array.of_list xs) in
      Value.equal (Value.distinct v) (Value.distinct (Value.distinct v)))

let props =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_compare_total_order; prop_equal_reflexive; prop_take_length;
      prop_rev_involution; prop_asc_sorted; prop_distinct_idempotent;
    ]

let () =
  Alcotest.run "qvalue"
    [
      ( "atoms",
        [
          Alcotest.test_case "null equality (2VL)" `Quick test_null_equality;
          Alcotest.test_case "null propagation" `Quick test_null_propagation;
          Alcotest.test_case "arithmetic promotion" `Quick test_arith_promotion;
          Alcotest.test_case "date arithmetic" `Quick test_date_arith;
          Alcotest.test_case "date roundtrip" `Quick test_date_roundtrip;
          Alcotest.test_case "printing" `Quick test_atom_printing;
        ] );
      ( "values",
        [
          Alcotest.test_case "vector inference" `Quick test_vector_inference;
          Alcotest.test_case "til/take/drop" `Quick test_til_take_drop;
          Alcotest.test_case "where" `Quick test_where;
          Alcotest.test_case "sort and grade" `Quick test_sort_grade;
          Alcotest.test_case "distinct and group" `Quick test_distinct_group;
          Alcotest.test_case "table basics" `Quick test_table_basics;
          Alcotest.test_case "atom broadcast" `Quick test_table_atom_broadcast;
          Alcotest.test_case "flip roundtrip" `Quick test_flip_roundtrip;
          Alcotest.test_case "xkey" `Quick test_xkey;
          Alcotest.test_case "dict ops" `Quick test_dict_ops;
          Alcotest.test_case "type codes" `Quick test_type_codes;
        ] );
      ("properties", props);
    ]
