(* Runtime & resource observability tests: the GC/heap sampler (delta
   counters, build info, uptime, reset re-basing, heap watermark),
   Prometheus label-value escaping, per-domain utilization of a sharded
   platform, per-query allocation attribution (stable across plan-cache
   miss and hit), flight-recorder alloc deltas, and the /runtime.json +
   .hq.runtime + /healthz surfaces. *)

module V = Pgdb.Value
module Db = Pgdb.Db
module S = Catalog.Schema
module Ty = Catalog.Sqltype
module QV = Qvalue.Value
module QA = Qvalue.Atom
module P = Platform.Hyperq_platform
module M = Obs.Metrics
module RT = Obs.Runtime
module H = Obs.Http

let check = Alcotest.check
let tint = Alcotest.int
let tbool = Alcotest.bool
let tstr = Alcotest.string

let contains hay needle =
  let re = Str.regexp_string needle in
  try
    ignore (Str.search_forward re hay 0);
    true
  with Not_found -> false

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "query failed: %s" e

let make_db () =
  let db = Db.create () in
  Db.load_table db
    (S.table ~order_col:"hq_ord" "trades"
       [
         S.column "hq_ord" Ty.TBigint;
         S.column "Symbol" Ty.TVarchar;
         S.column "Price" Ty.TDouble;
         S.column "Size" Ty.TBigint;
       ])
    (List.mapi
       (fun i (sym, px, sz) ->
         [|
           V.Int (Int64.of_int i); V.Str sym; V.Float px;
           V.Int (Int64.of_int sz);
         |])
       [ ("A", 10.0, 100); ("B", 20.0, 200); ("A", 11.0, 150) ]);
  db

let make_platform ?(shards = 1) () =
  let recorder = Obs.Recorder.create ~threshold_s:0.0 () in
  let obs = Obs.Ctx.create ~recorder () in
  P.create ~obs ~shards (make_db ())

(* ------------------------------------------------------------------ *)
(* Label-value escaping                                                *)
(* ------------------------------------------------------------------ *)

let test_label_escaping () =
  check tstr "backslash" "a\\\\b" (M.escape_label_value "a\\b");
  check tstr "double quote" "a\\\"b" (M.escape_label_value "a\"b");
  check tstr "newline" "a\\nb" (M.escape_label_value "a\nb");
  check tstr "plain untouched" "plain_value-1.2"
    (M.escape_label_value "plain_value-1.2");
  (* end to end: a hostile label value round-trips through the
     exposition without breaking the quoting *)
  let reg = M.create () in
  let c =
    M.counter reg ~labels:[ ("q", "say \"hi\"\nback\\slash") ] "hq_test_total"
  in
  M.inc c;
  let text = M.to_prometheus reg in
  check tbool "escaped in exposition" true
    (contains text "q=\"say \\\"hi\\\"\\nback\\\\slash\"");
  check tbool "no raw newline inside value" false
    (contains text "say \"hi\"\nback")

(* ------------------------------------------------------------------ *)
(* The GC/heap sampler                                                 *)
(* ------------------------------------------------------------------ *)

let test_runtime_sampler () =
  let reg = M.create () in
  let rt = RT.create ~interval_s:1000.0 reg in
  (* allocate enough to move the minor counters between samples *)
  let junk = ref [] in
  for i = 0 to 50_000 do junk := (i, float_of_int i) :: !junk done;
  ignore (Sys.opaque_identity !junk);
  RT.sample rt;
  let stats = RT.stats rt in
  let v n = try List.assoc n stats with Not_found -> -1.0 in
  check tbool "allocation counted" true (v "gc_allocated_bytes_total" > 0.0);
  check tbool "heap gauge set" true (v "heap_bytes" > 0.0);
  check tbool "uptime advances" true (v "uptime_seconds" >= 0.0);
  (* stats itself samples, so the count is >= the explicit call *)
  check tbool "samples counted" true (RT.samples_total rt >= 1);
  (* counters are monotone across further samples *)
  let a1 = v "gc_allocated_bytes_total" in
  let junk2 = ref [] in
  for i = 0 to 10_000 do junk2 := string_of_int i :: !junk2 done;
  ignore (Sys.opaque_identity !junk2);
  RT.sample rt;
  let a2 = try List.assoc "gc_allocated_bytes_total" (RT.stats rt) with Not_found -> -1.0 in
  check tbool "allocation counter monotone" true (a2 >= a1);
  (* build info and uptime land in the registry exposition *)
  let text = M.to_prometheus reg in
  check tbool "build info gauge" true
    (contains text ("hq_build_info{version=\"" ^ RT.version ^ "\""));
  check tbool "uptime metric" true (contains text "hq_process_uptime_seconds");
  check tbool "gc counters exported" true
    (contains text "hq_gc_minor_collections_total");
  (* reset re-bases: counters and sample count restart from zero *)
  M.reset_all reg;
  RT.reset rt;
  check tint "samples zeroed" 0 (RT.samples_total rt);
  RT.sample rt;
  let a3 = try List.assoc "gc_allocated_bytes_total" (RT.stats rt) with Not_found -> -1.0 in
  check tbool "post-reset counts only post-reset allocation" true
    (a3 >= 0.0 && a3 < a2)

let test_heap_watermark () =
  let reg = M.create () in
  let rt = RT.create reg in
  check tbool "no watermark, no alarm" false (RT.heap_alarm rt);
  RT.set_heap_watermark rt (Some 1.0);
  check tbool "tiny watermark alarms" true (RT.heap_alarm rt);
  RT.set_heap_watermark rt (Some 1e12);
  check tbool "huge watermark clears" false (RT.heap_alarm rt);
  RT.set_heap_watermark rt None;
  check tbool "cleared watermark clears" false (RT.heap_alarm rt)

(* ------------------------------------------------------------------ *)
(* Per-domain utilization on a sharded platform                        *)
(* ------------------------------------------------------------------ *)

let test_per_domain_utilization () =
  let p = make_platform ~shards:2 () in
  let c = P.Client.connect p in
  for _ = 1 to 10 do
    ignore (ok (P.Client.query c "select mx:max Price by Symbol from trades"))
  done;
  Option.iter Shard.Cluster.refresh_saturation (P.cluster p);
  let metric_total sub =
    List.fold_left
      (fun acc s ->
        if contains s.M.s_name sub then acc +. s.M.s_value else acc)
      0.0
      (M.snapshot (P.obs p).Obs.Ctx.registry)
  in
  let busy1 = metric_total "hq_domain_busy_seconds" in
  let jobs1 = metric_total "hq_domain_jobs_total" in
  let alloc1 = metric_total "hq_shard_alloc_bytes" in
  check tbool "domains did work" true (busy1 > 0.0);
  check tbool "jobs counted" true (jobs1 > 0.0);
  check tbool "shard dispatch allocation counted" true (alloc1 > 0.0);
  (* counters are monotone: more traffic can only grow them *)
  for _ = 1 to 10 do
    ignore (ok (P.Client.query c "select mx:max Price by Symbol from trades"))
  done;
  Option.iter Shard.Cluster.refresh_saturation (P.cluster p);
  check tbool "busy monotone" true
    (metric_total "hq_domain_busy_seconds" >= busy1);
  check tbool "jobs monotone" true
    (metric_total "hq_domain_jobs_total" >= jobs1);
  check tbool "alloc monotone" true
    (metric_total "hq_shard_alloc_bytes" >= alloc1);
  (* idle + busy is bounded by pool uptime per domain (gauge sanity) *)
  let idle = metric_total "hq_domain_idle_seconds" in
  check tbool "idle non-negative" true (idle >= 0.0);
  P.Client.close c;
  P.shutdown p

(* ------------------------------------------------------------------ *)
(* Per-query allocation attribution                                    *)
(* ------------------------------------------------------------------ *)

let test_alloc_attribution_cache_hit_miss () =
  let p = make_platform () in
  let c = P.Client.connect p in
  let qs = (P.obs p).Obs.Ctx.qstats in
  let q = "select sum Size by Symbol from trades" in
  let fp = Qlang.Fingerprint.of_normalized (Qlang.Fingerprint.normalize q) in
  (* cold: plan-cache miss, full translate *)
  ignore (ok (P.Client.query c q));
  let e1 = Option.get (Obs.Qstats.find qs fp) in
  let alloc1 = e1.Obs.Qstats.e_alloc_bytes in
  check tbool "miss records allocation" true (alloc1 > 0.0);
  (* warm: plan-cache hit skips translation but attribution still runs *)
  ignore (ok (P.Client.query c q));
  let e2 = Option.get (Obs.Qstats.find qs fp) in
  check tint "two calls" 2 e2.Obs.Qstats.e_calls;
  check tbool "hit also records allocation" true
    (e2.Obs.Qstats.e_alloc_bytes > alloc1);
  check tbool "average positive" true (Obs.Qstats.entry_alloc_avg e2 > 0.0);
  (* the top-allocators view surfaces the fingerprint *)
  let tops = Obs.Qstats.top_allocators qs 5 in
  check tbool "fingerprint in top allocators" true
    (List.exists (fun e -> e.Obs.Qstats.e_fingerprint = fp) tops);
  (* and the flight recorder (threshold 0 captures all) carries the
     per-query deltas, so .hq.slow can tell GC victims apart *)
  let recs = Obs.Recorder.recent (P.obs p).Obs.Ctx.recorder 10 in
  check tbool "recorder captured" true (recs <> []);
  check tbool "records carry alloc bytes" true
    (List.for_all (fun r -> r.Obs.Recorder.r_alloc_bytes > 0.0) recs);
  check tbool "jsonl carries alloc" true
    (contains (Obs.Recorder.to_jsonl (P.obs p).Obs.Ctx.recorder) "\"alloc_bytes\":");
  P.Client.close c;
  P.shutdown p

(* ------------------------------------------------------------------ *)
(* Surfaces: /runtime.json, .hq.runtime, /healthz, reset               *)
(* ------------------------------------------------------------------ *)

let test_runtime_surfaces () =
  let p = make_platform () in
  let c = P.Client.connect p in
  ignore (ok (P.Client.query c "select Price from trades"));
  let get path =
    H.handle (P.admin_handler p)
      (Printf.sprintf "GET %s HTTP/1.1\r\nHost: t\r\n\r\n" path)
  in
  (* /runtime.json serves current telemetry with build identity *)
  let rj = get "/runtime.json" in
  check tbool "runtime.json 200" true (contains rj "HTTP/1.1 200");
  check tbool "runtime.json version" true
    (contains rj ("\"version\": \"" ^ RT.version ^ "\""));
  check tbool "runtime.json gc counters" true
    (contains rj "\"gc_allocated_bytes_total\":");
  check tbool "runtime.json uptime" true (contains rj "\"uptime_seconds\":");
  (* wrong method gets a 405 with Allow *)
  let post =
    H.handle (P.admin_handler p) "POST /runtime.json HTTP/1.1\r\nHost: t\r\n\r\n"
  in
  check tbool "405 on POST" true (contains post "HTTP/1.1 405");
  (* /healthz reports uptime and stays ok *)
  let hz = get "/healthz" in
  check tbool "healthz 200" true (contains hz "HTTP/1.1 200");
  check tbool "healthz ok" true (contains hz "ok");
  check tbool "healthz uptime" true (contains hz "uptime_s=");
  (* heap watermark degrades /healthz to 503, clearing restores it *)
  let rt = (P.obs p).Obs.Ctx.runtime in
  RT.set_heap_watermark rt (Some 1.0);
  let hz503 = get "/healthz" in
  check tbool "healthz degrades above watermark" true
    (contains hz503 "HTTP/1.1 503");
  check tbool "healthz names the heap" true
    (contains hz503 "heap above watermark");
  RT.set_heap_watermark rt None;
  check tbool "healthz recovers" true (contains (get "/healthz") "HTTP/1.1 200");
  (* .hq.runtime answers in-band as a key/value table *)
  (match ok (P.Client.query c ".hq.runtime") with
  | QV.Table tb ->
      let stat_col = QV.column_exn tb "stat" in
      let found = ref false in
      for i = 0 to QV.length stat_col - 1 do
        match QV.index stat_col i with
        | QV.Atom (QA.Sym "gc_allocated_bytes_total") -> found := true
        | _ -> ()
      done;
      check tbool ".hq.runtime has gc counters" true !found
  | v -> Alcotest.failf "expected table, got %s" (Qvalue.Qprint.to_string v));
  (* .hq.stats gains uptime via the mirrored gauge refresh *)
  let stats = get "/metrics" in
  check tbool "metrics exports uptime" true
    (contains stats "hq_process_uptime_seconds");
  (* reset clears runtime counters atomically with the registry *)
  RT.sample rt;
  check tbool "samples before reset" true (RT.samples_total rt >= 1);
  ignore (ok (P.Client.query c ".hq.stats.reset"));
  check tint "runtime samples reset" 0 (RT.samples_total rt);
  let post_reset =
    H.handle (P.admin_handler p) "POST /reset HTTP/1.1\r\nHost: t\r\n\r\n"
  in
  check tbool "POST /reset ok" true (contains post_reset "HTTP/1.1 200");
  check tint "runtime samples reset again" 0 (RT.samples_total rt);
  P.Client.close c;
  P.shutdown p

(* ------------------------------------------------------------------ *)
(* Timeseries windows derive GC rates                                  *)
(* ------------------------------------------------------------------ *)

let test_timeseries_gc_windows () =
  let p = make_platform () in
  let c = P.Client.connect p in
  let obs = P.obs p in
  Obs.Timeseries.set_interval obs.Obs.Ctx.timeseries 0.0;
  (* each query's in-band tick snapshots; the platform hook samples the
     runtime first, so windows see hq_gc_* counter movement *)
  for _ = 1 to 5 do
    ignore (ok (P.Client.query c "select sum Size by Symbol from trades"))
  done;
  let ws = Obs.Timeseries.windows obs.Obs.Ctx.timeseries in
  check tbool "windows exist" true (ws <> []);
  check tbool "some window saw allocation" true
    (List.exists (fun w -> w.Obs.Timeseries.w_alloc_bytes > 0) ws);
  check tbool "alloc rate derived" true
    (List.exists (fun w -> w.Obs.Timeseries.w_alloc_bps > 0.0) ws);
  check tbool "windows render alloc json" true
    (contains (Obs.Timeseries.to_json obs.Obs.Ctx.timeseries) "\"alloc_bytes\":");
  P.Client.close c;
  P.shutdown p

let () =
  Alcotest.run "runtime"
    [
      ( "metrics",
        [
          Alcotest.test_case "label-value escaping" `Quick test_label_escaping;
        ] );
      ( "sampler",
        [
          Alcotest.test_case "gc/heap deltas and reset" `Quick
            test_runtime_sampler;
          Alcotest.test_case "heap watermark" `Quick test_heap_watermark;
        ] );
      ( "domains",
        [
          Alcotest.test_case "per-domain utilization (sharded)" `Quick
            test_per_domain_utilization;
        ] );
      ( "attribution",
        [
          Alcotest.test_case "plan-cache miss and hit both attribute" `Quick
            test_alloc_attribution_cache_hit_miss;
        ] );
      ( "surfaces",
        [
          Alcotest.test_case "/runtime.json, .hq.runtime, healthz, reset"
            `Quick test_runtime_surfaces;
          Alcotest.test_case "timeseries gc windows" `Quick
            test_timeseries_gc_windows;
        ] );
    ]
