(* Sharded execution tests: router classification over hand-built XTRA
   trees, cluster partitioning and DDL/DML mirroring, the full platform
   at --shards 2 (the existing end-to-end suite re-run sharded), a
   200-query randomized differential against the single-backend engine,
   and the plan-cache shard-generation regression. *)

module V = Pgdb.Value
module Db = Pgdb.Db
module S = Catalog.Schema
module Ty = Catalog.Sqltype
module QV = Qvalue.Value
module QA = Qvalue.Atom
module P = Platform.Hyperq_platform
module E = Hyperq.Engine
module PC = Hyperq.Plancache
module I = Xtra.Ir
module A = Sqlast.Ast
module SM = Shard.Shardmap
module R = Shard.Router
module C = Shard.Cluster
module MD = Workload.Marketdata
module M = Obs.Metrics

let check = Alcotest.check
let tint = Alcotest.int
let tbool = Alcotest.bool

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "query failed: %s" e

(* ------------------------------------------------------------------ *)
(* Router classification                                               *)
(* ------------------------------------------------------------------ *)

let cr n t = { I.cr_name = n; I.cr_type = t }

let trades_cols =
  [
    cr "hq_ord" Ty.TBigint;
    cr "Symbol" Ty.TVarchar;
    cr "Price" Ty.TDouble;
    cr "Size" Ty.TBigint;
  ]

let trades_get =
  I.Get { table = "trades"; cols = trades_cols; ordcol = Some "hq_ord" }

let smap ?(shards = 4) () =
  let m = SM.create ~shards ~distributions:[ ("trades", "Symbol") ] in
  SM.add_replicated m "secmaster";
  m

let root_sort rel oc =
  I.Sort { input = rel; keys = [ { I.sk_expr = I.ColRef oc; sk_dir = `Asc } ] }

let test_route_concat () =
  match R.route (smap ()) trades_get with
  | R.Run (R.Concat _, [ 0; 1; 2; 3 ]) -> ()
  | _ -> Alcotest.fail "bare distributed scan should scatter as concat"

let test_route_merge () =
  match R.route (smap ()) (root_sort trades_get "hq_ord") with
  | R.Run (R.Merge (_, [ ("hq_ord", `Asc) ]), [ 0; 1; 2; 3 ]) -> ()
  | _ -> Alcotest.fail "order-column sort should scatter as merge"

let test_route_single () =
  let m = smap () in
  let filtered pred = I.Filter { input = trades_get; pred } in
  let eqs =
    [
      I.NullSafeEq (I.ColRef "Symbol", I.Const (A.Str "AAA", Ty.TVarchar));
      I.Eq2 (I.Const (A.Str "AAA", Ty.TVarchar), I.ColRef "Symbol");
    ]
  in
  List.iter
    (fun pred ->
      match R.route m (root_sort (filtered pred) "hq_ord") with
      | R.Run (R.Single (s, _), _) ->
          check tint "pinned to the hash shard"
            (SM.shard_of_value m (V.Str "AAA"))
            s
      | _ -> Alcotest.fail "distribution-key equality should pin one shard")
    eqs;
  (* a float literal's canonical text is not trusted for pinning *)
  match
    R.route m
      (root_sort
         (filtered
            (I.NullSafeEq (I.ColRef "Symbol", I.Const (A.Float 1.0, Ty.TDouble))))
         "hq_ord")
  with
  | R.Run (R.Merge _, _) -> ()
  | _ -> Alcotest.fail "non-pinnable literal should fall back to scatter"

let test_route_partial_agg () =
  let agg =
    I.Aggregate
      {
        input = trades_get;
        keys = [ ("Symbol", I.ColRef "Symbol") ];
        aggs =
          [
            ("mx", I.AggFun { fn = "max"; distinct = false; args = [ I.ColRef "Price" ] });
            ("ap", I.AggFun { fn = "avg"; distinct = false; args = [ I.ColRef "Price" ] });
            (* the binder's Q-sum form: coalesce(SUM(x), 0) *)
            ( "sz",
              I.ScalarFun
                ( "coalesce",
                  [
                    I.AggFun
                      { fn = "sum"; distinct = false; args = [ I.ColRef "Size" ] };
                    I.Const (A.Int 0L, Ty.TBigint);
                  ] ) );
          ];
      }
  in
  match R.route (smap ()) (root_sort agg "Symbol") with
  | R.Run (R.PartialAgg plan, _) -> (
      check tbool "re-sorted on the group key" true
        (plan.R.a_sort = [ ("Symbol", `Asc) ]);
      match plan.R.a_cols with
      | [
       ("Symbol", R.CKey); ("mx", R.CMax); ("ap", R.CAvg (s, c)); ("sz", R.CSum);
      ] ->
          check tbool "hidden avg partials" true
            (s = "hq_ps_ap" && c = "hq_pc_ap")
      | _ -> Alcotest.fail "unexpected combine plan")
  | _ -> Alcotest.fail "decomposable aggregate should scatter as partial-agg"

(* selectivity feedback: an IN list on the distribution column whose
   members hash to a proper shard subset prunes the scatter — but only
   when workload feedback says the statement is selective *)
let test_route_pruned_scatter () =
  let m = smap () in
  let shard_of s = SM.shard_of_value m (V.Str s) in
  (* find two symbols on distinct shards and one sharing the first's *)
  let syms = List.init 64 (fun i -> Printf.sprintf "S%d" i) in
  let a = List.hd syms in
  let b = List.find (fun s -> shard_of s <> shard_of a) syms in
  let in_pred members =
    I.Filter
      {
        input = trades_get;
        pred =
          I.InList
            ( I.ColRef "Symbol",
              List.map (fun s -> (A.Str s, Ty.TVarchar)) members );
      }
  in
  let expected = List.sort_uniq compare [ shard_of a; shard_of b ] in
  (* no feedback: conservative full scatter *)
  (match R.route m (in_pred [ a; b ]) with
  | R.Run (R.Concat _, [ 0; 1; 2; 3 ]) -> ()
  | _ -> Alcotest.fail "without feedback the scatter must stay full");
  (* unselective feedback: still full *)
  (match R.route ~selectivity:0.9 m (in_pred [ a; b ]) with
  | R.Run (R.Concat _, [ 0; 1; 2; 3 ]) -> ()
  | _ -> Alcotest.fail "unselective fingerprints must not prune");
  (* selective feedback: scatter only where the members can live *)
  (match R.route ~selectivity:0.05 m (in_pred [ a; b ]) with
  | R.Run (R.Concat _, targets) ->
      check tbool "pruned to the members' shards" true (targets = expected);
      let x =
        R.explain_route ~shards:4 (R.route ~selectivity:0.05 m (in_pred [ a; b ]))
      in
      check tbool "explain marks the prune" true x.R.x_pruned;
      check tbool "explain carries the subset" true (x.R.x_targets = expected)
  | _ -> Alcotest.fail "selective IN list should prune the scatter");
  (* all members on one shard still pins, with or without feedback *)
  let a' = List.find (fun s -> s <> a && shard_of s = shard_of a) syms in
  match R.route ~selectivity:0.05 m (in_pred [ a; a' ]) with
  | R.Run (R.Single (s, _), _) ->
      check tint "same-shard IN list pins" (shard_of a) s
  | _ -> Alcotest.fail "single-shard IN list should pin"

let test_route_coordinator () =
  let m = smap () in
  let coordinator rel =
    match R.route m rel with
    | R.Coordinator _ -> true
    | R.Run _ -> false
  in
  check tbool "limit stays on the coordinator" true
    (coordinator (I.Limit { input = trades_get; n = 5 }));
  check tbool "unknown table stays on the coordinator" true
    (coordinator
       (I.Get { table = "hq_temp_1"; cols = trades_cols; ordcol = None }));
  check tbool "replicated-only statement stays on the coordinator" true
    (coordinator
       (I.Get
          { table = "secmaster"; cols = [ cr "Symbol" Ty.TVarchar ]; ordcol = None }));
  check tbool "distinct aggregate stays on the coordinator" true
    (coordinator
       (I.Aggregate
          {
            input = trades_get;
            keys = [];
            aggs =
              [
                ( "n",
                  I.AggFun
                    { fn = "count"; distinct = true; args = [ I.ColRef "Symbol" ] }
                );
              ];
          }))

(* ------------------------------------------------------------------ *)
(* Cluster: partitioning and DDL/DML mirroring                         *)
(* ------------------------------------------------------------------ *)

let make_db () =
  let db = Db.create () in
  Db.load_table db
    (S.table ~order_col:"hq_ord" "trades"
       [
         S.column "hq_ord" Ty.TBigint;
         S.column "Symbol" Ty.TVarchar;
         S.column "Price" Ty.TDouble;
         S.column "Size" Ty.TBigint;
       ])
    (List.mapi
       (fun i (sym, px, sz) ->
         [|
           V.Int (Int64.of_int i); V.Str sym; V.Float px;
           V.Int (Int64.of_int sz);
         |])
       [
         ("A", 10.0, 100);
         ("B", 20.0, 200);
         ("A", 11.0, 150);
         ("B", 21.0, 250);
         ("A", 12.0, 300);
       ]);
  db

let with_cluster ?(shards = 2) db f =
  let c = C.create ~shards db in
  Fun.protect ~finally:(fun () -> C.shutdown c) (fun () -> f c)

let test_cluster_partitions_rows () =
  with_cluster (make_db ()) (fun c ->
      let infos = C.shards_info c in
      check tint "two shards" 2 (List.length infos);
      let total =
        List.fold_left (fun n i -> n + i.C.si_rows) 0 infos
      in
      check tint "every trade lands on exactly one shard" 5 total;
      (* all of one symbol's rows share a shard *)
      let m = C.map c in
      check tbool "symbols hash consistently" true
        (SM.shard_of_value m (V.Str "A") <> SM.shard_of_value m (V.Str "B")
        || List.exists (fun i -> i.C.si_rows = 0) infos))

let test_cluster_mirrors_ddl () =
  let db = make_db () in
  with_cluster db (fun c ->
      let backend = Hyperq.Backend.of_pgdb_session (Db.open_session db) in
      C.watch_backend c backend;
      let gen0 = C.generation c in
      let exec sql =
        match Hyperq.Backend.exec backend sql with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "%s failed: %s" sql e
      in
      exec "CREATE TABLE refdata (k BIGINT, v TEXT)";
      check tbool "created table is replicated" true
        (SM.is_replicated (C.map c) "refdata");
      check tbool "layout change bumps the generation" true
        (C.generation c > gen0);
      exec "INSERT INTO refdata VALUES (1, 'x'), (2, 'y')";
      List.iter
        (fun i ->
          check tbool "replicated insert reaches every shard" true
            (List.mem "refdata" i.C.si_tables))
        (C.shards_info c);
      let rows_before =
        List.fold_left (fun n i -> n + i.C.si_rows) 0 (C.shards_info c)
      in
      (* 5 distributed trades + 2 refdata rows per shard *)
      check tint "rows after replicated insert" (5 + (2 * 2)) rows_before;
      exec
        "INSERT INTO trades (hq_ord, Symbol, Price, Size) VALUES (10, 'A', \
         13.0, 50)";
      let rows_after =
        List.fold_left (fun n i -> n + i.C.si_rows) 0 (C.shards_info c)
      in
      check tint "distributed insert lands on exactly one shard"
        (rows_before + 1) rows_after;
      (* a mutation the mirror cannot replay evicts the table *)
      let gen1 = C.generation c in
      ignore (Hyperq.Backend.exec backend "DELETE FROM trades");
      check tbool "unmirrorable mutation evicts the table" true
        (not (SM.known (C.map c) "trades"));
      check tbool "eviction bumps the generation" true (C.generation c > gen1))

(* ------------------------------------------------------------------ *)
(* The platform end-to-end at --shards 2                               *)
(* ------------------------------------------------------------------ *)

let with_platform ?shards ?workers ?engine_config db f =
  let p = P.create ?shards ?workers ?engine_config db in
  Fun.protect ~finally:(fun () -> P.shutdown p) (fun () -> f p)

let test_sharded_platform_end_to_end () =
  with_platform ~shards:2 (make_db ()) (fun p ->
      let c = P.Client.connect p in
      (* router-able: distribution-key equality *)
      (match ok (P.Client.query c "select Price from trades where Symbol=`A") with
      | QV.Table t ->
          check tbool "pinned select values" true
            (QV.equal (QV.column_exn t "Price") (QV.floats [| 10.0; 11.0; 12.0 |]))
      | v -> Alcotest.failf "expected table, got %s" (Qvalue.Qprint.to_string v));
      (* scatter-gather: grouped aggregate with coordinator recombination *)
      (match ok (P.Client.query c "select mx:max Price by Symbol from trades") with
      | QV.KTable (_, v) ->
          check tbool "grouped max across shards" true
            (QV.equal (QV.column_exn v "mx") (QV.floats [| 12.0; 21.0 |]))
      | v -> Alcotest.failf "expected keyed table, got %s" (Qvalue.Qprint.to_string v));
      (* scatter-gather: ordered merge on the implicit order column *)
      (match ok (P.Client.query c "select Symbol from trades") with
      | QV.Table t ->
          check tbool "merge preserves global order" true
            (QV.equal (QV.column_exn t "Symbol")
               (QV.syms [| "A"; "B"; "A"; "B"; "A" |]))
      | v -> Alcotest.failf "expected table, got %s" (Qvalue.Qprint.to_string v));
      (* errors still travel as QIPC errors *)
      (match P.Client.query c "select nope from missing_table" with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "expected an error");
      (* the route metrics saw both classes *)
      let reg = (P.obs p).Obs.Ctx.registry in
      let routed r =
        M.counter_value
          (M.counter reg ~labels:[ ("route", r) ] "hq_shard_queries_total")
      in
      check tbool "router route counted" true (routed "router" >= 1);
      check tbool "scatter route counted" true (routed "scatter" >= 1);
      (* .hq.shards answers in-band with per-shard dispatch counts *)
      (match ok (P.Client.query c ".hq.shards") with
      | QV.Table t ->
          check tint ".hq.shards rows" 2 (QV.table_length t);
          let statements =
            match QV.column_exn t "statements" with
            | QV.Vector (_, a) ->
                Array.fold_left
                  (fun n x -> match x with QA.Long i -> n + Int64.to_int i | _ -> n)
                  0 a
            | _ -> 0
          in
          check tbool "shards saw dispatches" true (statements > 0)
      | v -> Alcotest.failf "expected table, got %s" (Qvalue.Qprint.to_string v));
      P.Client.close c)

(* selectivity feedback through the full stack: with a selective
   fingerprint, an IN list on the distribution column dispatches only to
   the shards its members hash to — and the answer is unchanged *)
let test_pruned_dispatch_end_to_end () =
  with_platform ~shards:4 (make_db ()) (fun p ->
      let cluster = Option.get (P.cluster p) in
      let m = C.map cluster in
      let c = P.Client.connect p in
      (* a member sharing shard with no other: pick a symbol on a
         different shard than "A" so the pair spans a proper subset *)
      let shard_of s = SM.shard_of_value m (V.Str s) in
      let other =
        List.find
          (fun s -> shard_of s <> shard_of "A")
          (List.init 64 (fun i -> Printf.sprintf "S%d" i))
      in
      let q = Printf.sprintf "select from trades where Symbol in `A`%s" other in
      let statements () =
        List.map (fun i -> i.C.si_statements) (C.shards_info cluster)
      in
      let delta f =
        let before = statements () in
        let r = f () in
        (r, List.map2 ( - ) (statements ()) before)
      in
      (* without feedback: the scatter hits all four shards *)
      let v_full, d_full = delta (fun () -> ok (P.Client.query c q)) in
      check tint "conservative scatter hits every shard" 4
        (List.length (List.filter (fun d -> d > 0) d_full));
      (* selective feedback: only the members' shards are dispatched *)
      C.set_selectivity_source cluster (fun _ -> Some 0.05);
      let v_pruned, d_pruned = delta (fun () -> ok (P.Client.query c q)) in
      check tint "pruned scatter hits two shards" 2
        (List.length (List.filter (fun d -> d > 0) d_pruned));
      check tbool "pruned answer unchanged" true (QV.equal v_full v_pruned);
      let reg = (P.obs p).Obs.Ctx.registry in
      check tbool "pruned scatter counted" true
        (M.counter_value (M.counter reg "hq_shard_pruned_scatters_total") >= 1);
      P.Client.close c)

(* ------------------------------------------------------------------ *)
(* Randomized differential: sharded vs single-backend                  *)
(* ------------------------------------------------------------------ *)

(* float-tolerant value equality: partial-aggregate recombination sums
   floats in a different association order than the single pass *)
let feq a b =
  a = b
  || abs_float (a -. b)
     <= 1e-9 *. Float.max 1.0 (Float.max (abs_float a) (abs_float b))

let atom_eq (a : QA.t) (b : QA.t) =
  match (a, b) with
  | QA.Float x, QA.Float y -> feq x y
  | a, b -> QA.equal a b

let rec val_eq (a : QV.t) (b : QV.t) =
  match (a, b) with
  | QV.Atom x, QV.Atom y -> atom_eq x y
  | QV.Vector (tx, xs), QV.Vector (ty, ys) ->
      tx = ty
      && Array.length xs = Array.length ys
      && Array.for_all2 atom_eq xs ys
  | QV.List xs, QV.List ys ->
      Array.length xs = Array.length ys && Array.for_all2 val_eq xs ys
  | QV.Dict (ka, va), QV.Dict (kb, vb) -> val_eq ka kb && val_eq va vb
  | QV.Table ta, QV.Table tb -> table_eq ta tb
  | QV.KTable (ka, va), QV.KTable (kb, vb) -> table_eq ka kb && table_eq va vb
  | a, b -> QV.equal a b

and table_eq (ta : QV.table) (tb : QV.table) =
  ta.QV.cols = tb.QV.cols
  && Array.length ta.QV.data = Array.length tb.QV.data
  && Array.for_all2 val_eq ta.QV.data tb.QV.data

let marketdata_db () =
  let db = Db.create () in
  MD.load_pg db (MD.generate MD.small_scale);
  db

let random_query (d : MD.dataset) rng =
  let sym () = d.MD.syms.(Random.State.int rng (Array.length d.MD.syms)) in
  let px () = 95.0 +. Random.State.float rng 15.0 in
  match Random.State.int rng 8 with
  | 0 -> Printf.sprintf "select from trades where Symbol=`%s" (sym ())
  | 1 -> Printf.sprintf "select Price,Size from trades where Price>%.2f" (px ())
  | 2 -> "select s:sum Size, a:avg Price by Symbol from trades"
  | 3 -> "select mn:min Bid, mx:max Ask by Symbol from quotes"
  | 4 -> "select a:avg Price, s:sum Size by Exch from trades"
  | 5 -> "select t:sum Size from trades"
  | 6 -> Printf.sprintf "select from quotes where Symbol=`%s" (sym ())
  | _ ->
      Printf.sprintf "select c:count Size by Symbol from trades where Price>%.2f"
        (px ())

let differential ~engine_config ~shards ~queries ~compare_rows () =
  let d = MD.generate MD.small_scale in
  with_platform ~engine_config (marketdata_db ()) (fun plain ->
      with_platform ~engine_config ~shards (marketdata_db ()) (fun sharded ->
          let c1 = P.Client.connect plain in
          let c2 = P.Client.connect sharded in
          let rng = Random.State.make [| 20260807; shards |] in
          let divergences = ref [] in
          for _ = 1 to queries do
            let q = random_query d rng in
            match (P.Client.query c1 q, P.Client.query c2 q) with
            | Ok v1, Ok v2 ->
                if not (compare_rows v1 v2) then
                  divergences := (q, "values differ") :: !divergences
            | Error _, Error _ -> ()
            | Ok _, Error e ->
                divergences := (q, "sharded errored: " ^ e) :: !divergences
            | Error e, Ok _ ->
                divergences := (q, "single errored: " ^ e) :: !divergences
          done;
          P.Client.close c1;
          P.Client.close c2;
          match !divergences with
          | [] -> ()
          | (q, why) :: _ ->
              Alcotest.failf "%d divergent quer%s, first: %S (%s)"
                (List.length !divergences)
                (if List.length !divergences = 1 then "y" else "ies")
                q why))

let test_differential_200 () =
  differential
    ~engine_config:Hyperq.Engine.default_config
    ~shards:4 ~queries:200 ~compare_rows:val_eq ()

(* with implicit ordering disabled, scatter results concatenate in shard
   order — unordered SQL semantics, so compare as multisets *)
let multiset_eq (a : QV.t) (b : QV.t) =
  let rows_of = function
    | QV.Table t ->
        Some
          (List.init (QV.table_length t) (fun r ->
               Array.map
                 (function
                   | QV.Vector (_, xs) -> QV.Atom xs.(r)
                   | QV.List xs -> xs.(r)
                   | v -> v)
                 t.QV.data))
    | _ -> None
  in
  match (rows_of a, rows_of b) with
  | Some ra, Some rb ->
      List.length ra = List.length rb
      && Stdlib.compare
           (List.sort Stdlib.compare ra)
           (List.sort Stdlib.compare rb)
         = 0
  | _ -> val_eq a b

let test_differential_unordered () =
  let config () =
    let cfg = Hyperq.Engine.default_config () in
    cfg.E.xformer.Hyperq.Xformer.enable_order <- false;
    cfg
  in
  differential ~engine_config:config ~shards:2 ~queries:60
    ~compare_rows:multiset_eq ()

(* ------------------------------------------------------------------ *)
(* Plan cache: shard-map generation in the key                         *)
(* ------------------------------------------------------------------ *)

let test_plan_cache_shard_generation () =
  let pc = PC.create () in
  let q = "select Price from trades where Symbol=`A" in
  let engine ?sharder () =
    let cfg = E.default_config () in
    cfg.E.plan_cache <- true;
    E.create ~config:cfg ~plan_cache:pc ?sharder
      (Hyperq.Backend.of_pgdb_session (Db.open_session (make_db ())))
  in
  let run eng =
    match E.try_run eng q with
    | Ok { E.value = Some v; _ } -> v
    | Ok _ -> Alcotest.failf "query %S returned no value" q
    | Error e -> Alcotest.failf "query failed: %s" e
  in
  (* unsharded engine installs a template under generation 0 *)
  let e0 = engine () in
  let v0 = run e0 in
  let v0' = run e0 in
  check tbool "unsharded reruns agree" true (QV.equal v0 v0');
  check tint "one cached template" 1 (PC.size pc);
  (* a sharded engine (generation 1) must not be served that template *)
  let gen = ref 1 in
  let sharder =
    {
      E.sh_route = (fun ?fingerprint:_ _ -> None);
      sh_generation = (fun () -> !gen);
    }
  in
  let e1 = engine ~sharder () in
  let v1 = run e1 in
  check tbool "sharded result still correct" true (QV.equal v0 v1);
  (* templates install on the second stable run (the first moves the
     fresh backend's catalog generation); what matters is that the
     sharded engine was never served the generation-0 template *)
  ignore (run e1);
  check tint "sharded route gets its own cache entry" 2 (PC.size pc);
  let gens =
    List.sort_uniq Stdlib.compare
      (List.map (fun e -> e.PC.e_key.PC.k_shard_gen) (PC.entries pc))
  in
  check tbool "entries keyed by distinct generations" true (gens = [ 0; 1 ]);
  (* bumping the shard-map generation (layout change) invalidates again:
     same engine, same session — only the generation differs *)
  gen := 2;
  ignore (run e1);
  ignore (run e1);
  check tint "generation bump re-keys the cache" 3 (PC.size pc)

(* a sharded platform with the plan cache on never installs templates
   for sharded routes, so reruns stay correct *)
let test_sharded_routes_not_cached () =
  with_platform ~shards:2 (make_db ()) (fun p ->
      let c = P.Client.connect p in
      let q = "select mx:max Price by Symbol from trades" in
      let v1 = ok (P.Client.query c q) in
      let v2 = ok (P.Client.query c q) in
      check tbool "sharded rerun identical" true (QV.equal v1 v2);
      let templates =
        match P.plan_cache p with
        | None -> 0
        | Some pc ->
            List.length
              (List.filter
                 (fun e ->
                   match e.PC.e_kind with PC.Template _ -> true | _ -> false)
                 (PC.entries pc))
      in
      check tint "no template installed for the sharded route" 0 templates;
      P.Client.close c)

(* ------------------------------------------------------------------ *)
(* Concurrent admin reads under a sharded workload                     *)
(* ------------------------------------------------------------------ *)

let contains hay needle =
  let re = Str.regexp_string needle in
  try
    ignore (Str.search_forward re hay 0);
    true
  with Not_found -> false

(* four domains hammer the scrape surfaces (Prometheus text, the
   time-series ring, healthz, raw registry snapshots) while the sharded
   workload runs and answers in-band admin queries: every response must
   be well-formed (no torn reads, no exceptions) and the headline
   counter must never move backwards *)
let test_concurrent_admin_reads () =
  with_platform ~shards:2 (make_db ()) (fun p ->
      let stop = Atomic.make false in
      let failures = Atomic.make 0 in
      let fail_mu = Mutex.create () in
      let fail_msg = ref "" in
      let record msg =
        Atomic.incr failures;
        Mutex.lock fail_mu;
        if !fail_msg = "" then fail_msg := msg;
        Mutex.unlock fail_mu
      in
      let http req () =
        while not (Atomic.get stop) do
          match Obs.Http.handle (P.admin_handler p) req with
          | out ->
              if not (contains out "HTTP/1.1 200") then
                record
                  ("non-200 reply: "
                  ^ String.sub out 0 (min 60 (String.length out)))
          | exception e -> record (Printexc.to_string e)
        done
      in
      let monotone () =
        let last = ref 0.0 in
        let reg = (P.obs p).Obs.Ctx.registry in
        while not (Atomic.get stop) do
          match
            List.find_opt
              (fun s -> s.M.s_name = "hq_queries_total")
              (M.snapshot reg)
          with
          | Some s ->
              if s.M.s_value < !last then record "hq_queries_total decreased";
              last := s.M.s_value
          | None -> ()
          | exception e -> record (Printexc.to_string e)
        done
      in
      let domains =
        List.map Domain.spawn
          [
            http "GET /metrics HTTP/1.1\r\n\r\n";
            http "GET /timeseries.json?window=30s HTTP/1.1\r\n\r\n";
            http "GET /healthz HTTP/1.1\r\n\r\n";
            monotone;
          ]
      in
      let c = P.Client.connect p in
      Fun.protect
        ~finally:(fun () ->
          Atomic.set stop true;
          List.iter Domain.join domains;
          P.Client.close c)
        (fun () ->
          for i = 1 to 200 do
            ignore
              (ok (P.Client.query c "select mx:max Price by Symbol from trades"));
            if i mod 20 = 0 then begin
              ignore (ok (P.Client.query c ".hq.stats"));
              ignore (ok (P.Client.query c ".hq.timeseries[]"))
            end
          done);
      check tint
        (Printf.sprintf "no concurrent-read failures (%s)" !fail_msg)
        0 (Atomic.get failures))

let () =
  Alcotest.run "shard"
    [
      ( "router",
        [
          Alcotest.test_case "concat" `Quick test_route_concat;
          Alcotest.test_case "merge" `Quick test_route_merge;
          Alcotest.test_case "single" `Quick test_route_single;
          Alcotest.test_case "partial-agg" `Quick test_route_partial_agg;
          Alcotest.test_case "pruned-scatter" `Quick test_route_pruned_scatter;
          Alcotest.test_case "coordinator" `Quick test_route_coordinator;
        ] );
      ( "cluster",
        [
          Alcotest.test_case "partitions rows" `Quick test_cluster_partitions_rows;
          Alcotest.test_case "mirrors DDL/DML" `Quick test_cluster_mirrors_ddl;
        ] );
      ( "platform --shards 2",
        [
          Alcotest.test_case "end to end" `Quick test_sharded_platform_end_to_end;
          Alcotest.test_case "pruned dispatch" `Quick
            test_pruned_dispatch_end_to_end;
        ] );
      ( "differential",
        [
          Alcotest.test_case "200 randomized queries" `Quick test_differential_200;
          Alcotest.test_case "unordered concat" `Quick test_differential_unordered;
        ] );
      ( "plan cache",
        [
          Alcotest.test_case "shard generation key" `Quick
            test_plan_cache_shard_generation;
          Alcotest.test_case "sharded routes not cached" `Quick
            test_sharded_routes_not_cached;
        ] );
      ( "concurrency",
        [
          Alcotest.test_case "admin reads under sharded load" `Quick
            test_concurrent_admin_reads;
        ] );
    ]
