(* The side-by-side framework run over the full 25-query Analytical
   Workload at small scale, plus targeted extension queries: the kdb
   interpreter and the Hyper-Q->pgdb pipeline must agree on everything. *)

let extension_queries =
  (* constructs beyond the 25-query workload: shifts, differ, sublist,
     union join, take, sorting *)
  [
    "select Time, p:prev Price, n:next Price from trades where Symbol=`AAA";
    "select Time from trades where Symbol=`AAA, differ Exch";
    "2 sublist select Price from trades where Symbol=`BBH";
    "select Symbol, Price, Bid from trades uj quotes";
    "3#`Price xdesc select from trades where Symbol=`CCO";
    "select s:sum Price by Exch from trades where Symbol in `AAA`BBH`CCO";
    "exec max Price from trades";
    "exec max Price by Symbol from trades";
    "select n:count Price by Sector from trades lj 1!0!secmaster_w";
    "distinct select Exch from trades";
    "`Bid xasc select Symbol, Bid from trades uj quotes";
    "select s:sum mx by Symbol from update mx:max Price by Symbol from \
     trades where Exch=`N";
    "select nulls:sum null mx from update mx:max Price by Symbol from \
     trades where Exch=`N";
    "select Time, Price from trades where Symbol=`AAA, Price>=avg Price";
    "select n:count Price by Symbol from trades where Symbol like \"A*\"";
    "select w:Size wavg Price by Symbol from trades";
    "select lo:min Bid, hi:max Ask by 3600000 xbar Time from quotes";
  ]

let () =
  let d = Workload.Marketdata.generate Workload.Marketdata.small_scale in
  let reports = Sidebyside.Framework.run_workload d in
  let workload_cases =
    List.map
      (fun (r : Sidebyside.Framework.report) ->
        Alcotest.test_case r.Sidebyside.Framework.query `Quick (fun () ->
            match r.Sidebyside.Framework.verdict with
            | Sidebyside.Framework.Match -> ()
            | v -> Alcotest.fail (Sidebyside.Framework.verdict_str v)))
      reports
  in
  let h = Sidebyside.Framework.create d in
  let extension_cases =
    List.map
      (fun q ->
        Alcotest.test_case q `Quick (fun () ->
            match Sidebyside.Framework.compare_query h q with
            | Sidebyside.Framework.Match -> ()
            | v -> Alcotest.fail (Sidebyside.Framework.verdict_str v)))
      extension_queries
  in
  Alcotest.run "sidebyside"
    [
      ("analytical workload", workload_cases);
      ("extension queries", extension_cases);
    ]
