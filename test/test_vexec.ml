(* Tests for the vectorized columnar executor (lib/pgdb: Batch + Vexec).

   The load-bearing property is byte-identical results: every query a
   session answers with the vectorized executor on must produce exactly
   the result the row interpreter produces, including column types, row
   order, and NULL placement. A randomized 200-query differential, a
   join differential (400+ 2-/3-table equi- and left-outer joins with
   null keys, single-node and over 2 hash partitions) plus targeted unit
   tests (3VL filters, selection-vector compaction, empty batches,
   all-null columns, explain nodes) pin that down. *)

module V = Pgdb.Value
module Db = Pgdb.Db
module Batch = Pgdb.Batch
module Vexec = Pgdb.Vexec
module Op = Pgdb.Opstats
module S = Catalog.Schema
module Ty = Catalog.Sqltype

let check = Alcotest.check
let tint = Alcotest.int
let tbool = Alcotest.bool

(* trades-like fixture with NULLs in both a float and a string column,
   so filters and aggregates cross the 3VL paths *)
let fixture () : Db.t =
  let db = Db.create () in
  Db.load_table db
    (S.table "trades"
       [
         S.column "sym" Ty.TVarchar;
         S.column "t" Ty.TBigint;
         S.column "price" Ty.TDouble;
         S.column "size" Ty.TBigint;
         S.column "note" Ty.TVarchar;
       ])
    [
      [| V.Str "AAPL"; V.Int 1000L; V.Float 10.0; V.Int 100L; V.Str "x" |];
      [| V.Str "MSFT"; V.Int 2000L; V.Float 20.0; V.Int 200L; V.Null |];
      [| V.Str "AAPL"; V.Int 3000L; V.Float 11.0; V.Int 150L; V.Str "y" |];
      [| V.Str "IBM"; V.Int 4000L; V.Null; V.Int 250L; V.Null |];
      [| V.Str "AAPL"; V.Int 5000L; V.Float 12.0; V.Int 300L; V.Str "x" |];
      [| V.Str "MSFT"; V.Int 6000L; V.Float 21.5; V.Int 50L; V.Str "z" |];
      [| V.Str "IBM"; V.Int 7000L; V.Float 95.25; V.Int 75L; V.Null |];
      [| V.Str "GOOG"; V.Int 8000L; V.Null; V.Int 125L; V.Str "yy" |];
      [| V.Str "MSFT"; V.Int 9000L; V.Float 19.5; V.Int 400L; V.Str "x" |];
      [| V.Str "GOOG"; V.Int 10000L; V.Float 140.0; V.Int 10L; V.Str "q" |];
    ];
  db

let session ~vectorized db =
  let sess = Db.open_session db in
  Db.set_vectorized sess vectorized;
  sess

(* run one statement to a comparable value: result payload or an error
   tag; both paths must land on the same constructor with equal data *)
let run sess sql =
  match Db.exec sess sql with
  | Db.Rows (res, _) -> Ok (res.Pgdb.Exec.res_cols, res.Pgdb.Exec.res_rows)
  | Db.Complete tag -> Error ("complete:" ^ tag)
  | exception Pgdb.Errors.Sql_error { code; message } ->
      Error (code ^ ":" ^ message)

let check_same sql a b =
  if Stdlib.compare a b <> 0 then
    Alcotest.failf "vector/row divergence on: %s" sql

let differential db sqls =
  let von = session ~vectorized:true db in
  let voff = session ~vectorized:false db in
  List.iter (fun sql -> check_same sql (run von sql) (run voff sql)) sqls

(* ------------------------------------------------------------------ *)
(* Randomized differential                                             *)
(* ------------------------------------------------------------------ *)

(* a small closed query language over the fixture that stays inside
   well-typed, non-erroring territory but crosses every vectorized
   operator: typed and generic filter kernels, IN/BETWEEN/LIKE,
   IS [NOT] NULL, grouped and scalar aggregates, expression
   projections, ORDER BY, LIMIT/OFFSET *)
let gen_query (rng : Random.State.t) : string =
  let pick a = a.(Random.State.int rng (Array.length a)) in
  let int_lit () = string_of_int (Random.State.int rng 12000) in
  let float_lit () =
    Printf.sprintf "%.2f" (Random.State.float rng 150.0)
  in
  let conjunct () =
    match Random.State.int rng 10 with
    | 0 -> Printf.sprintf "price > %s" (float_lit ())
    | 1 -> Printf.sprintf "size <= %s" (int_lit ())
    | 2 ->
        let a = Random.State.int rng 6000 in
        Printf.sprintf "t BETWEEN %d AND %d"
          a (a + Random.State.int rng 6000)
    | 3 -> Printf.sprintf "sym IN ('AAPL', 'MSFT', '%s')"
             (pick [| "IBM"; "GOOG"; "ZZZ" |])
    | 4 -> Printf.sprintf "sym LIKE '%s'" (pick [| "A%"; "%S%"; "__PL"; "%G" |])
    | 5 -> pick [| "note IS NULL"; "note IS NOT NULL" |]
    | 6 -> Printf.sprintf "price IS %s NULL"
             (pick [| ""; "NOT" |])
    | 7 -> Printf.sprintf "size <> %s" (int_lit ())
    | 8 -> Printf.sprintf "sym = '%s'" (pick [| "AAPL"; "IBM"; "NOPE" |])
    (* non-(col op lit) shape: exercises the generic compiled kernel *)
    | _ -> Printf.sprintf "price * 2 > %s" (float_lit ())
  in
  let where () =
    match Random.State.int rng 4 with
    | 0 -> ""
    | n ->
        " WHERE "
        ^ String.concat " AND "
            (List.init n (fun _ -> conjunct ()))
  in
  let order_limit ~cols =
    let ob =
      if Random.State.bool rng then ""
      else
        " ORDER BY "
        ^ String.concat ", "
            (List.filteri
               (fun i _ -> i <= Random.State.int rng 2)
               (List.map
                  (fun c ->
                    c ^ if Random.State.bool rng then " DESC" else " ASC")
                  cols))
    in
    let lim =
      if Random.State.bool rng then ""
      else Printf.sprintf " LIMIT %d" (Random.State.int rng 8)
    in
    let off =
      if Random.State.int rng 3 = 0 then
        Printf.sprintf " OFFSET %d" (Random.State.int rng 4)
      else ""
    in
    ob ^ lim ^ off
  in
  match Random.State.int rng 4 with
  | 0 ->
      (* plain projection: the pure-gather (columnar output) shape *)
      let cols =
        List.filter
          (fun _ -> Random.State.bool rng)
          [ "sym"; "t"; "price"; "size"; "note" ]
      in
      let cols = if cols = [] then [ "sym"; "t" ] else cols in
      Printf.sprintf "SELECT %s FROM trades%s%s"
        (String.concat ", " cols)
        (where ())
        (order_limit ~cols)
  | 1 ->
      (* expression projection *)
      Printf.sprintf
        "SELECT sym, price * size AS notional, size + 1 AS s1 FROM trades%s%s"
        (where ())
        (order_limit ~cols:[ "sym"; "notional" ])
  | 2 ->
      (* grouped aggregates *)
      let agg =
        pick
          [|
            "count(*) AS n";
            "sum(size) AS total";
            "avg(price) AS avgp";
            "min(price) AS lo";
            "max(size) AS hi";
            "count(note) AS notes";
            "sum(price * size) AS notional";
          |]
      in
      Printf.sprintf "SELECT sym, %s FROM trades%s GROUP BY sym%s" agg
        (where ())
        (order_limit ~cols:[ "sym" ])
  | _ ->
      (* scalar aggregates *)
      Printf.sprintf
        "SELECT count(*) AS n, sum(size) AS total, min(t) AS lo, avg(price) \
         AS avgp FROM trades%s"
        (where ())

let test_differential_200 () =
  let db = fixture () in
  let von = session ~vectorized:true db in
  let voff = session ~vectorized:false db in
  let rng = Random.State.make [| 0x5eed; 42 |] in
  let v0 = Atomic.get Vexec.stats_vector in
  for _ = 1 to 200 do
    let sql = gen_query rng in
    check_same sql (run von sql) (run voff sql)
  done;
  (* the differential only means something if the vector path actually
     served a healthy share of the queries *)
  let served = Atomic.get Vexec.stats_vector - v0 in
  if served < 100 then
    Alcotest.failf "vector path served only %d/200 generated queries" served

(* ------------------------------------------------------------------ *)
(* Join differential                                                   *)
(* ------------------------------------------------------------------ *)

(* three tables with NULL join keys on both sides, unmatched keys in
   both directions, and many-to-many duplicates — everything that can
   go wrong in a hash join's build/probe/pad phases *)
let join_fixture () : Db.t =
  let db = Db.create () in
  Db.load_table db
    (S.table "trades"
       [
         S.column "sym" Ty.TVarchar;
         S.column "t" Ty.TBigint;
         S.column "price" Ty.TDouble;
         S.column "size" Ty.TBigint;
       ])
    [
      [| V.Str "AAPL"; V.Int 1000L; V.Float 10.0; V.Int 100L |];
      [| V.Str "MSFT"; V.Int 2000L; V.Float 20.0; V.Int 200L |];
      [| V.Str "AAPL"; V.Int 3000L; V.Float 11.0; V.Int 150L |];
      [| V.Str "IBM"; V.Int 4000L; V.Null; V.Int 250L |];
      [| V.Null; V.Int 4500L; V.Float 13.0; V.Int 50L |];
      [| V.Str "AAPL"; V.Int 5000L; V.Float 12.0; V.Int 300L |];
      [| V.Str "MSFT"; V.Int 6000L; V.Float 21.5; V.Int 50L |];
      [| V.Str "ORCL"; V.Int 6500L; V.Float 30.0; V.Int 80L |];
      [| V.Str "IBM"; V.Int 7000L; V.Float 95.25; V.Int 75L |];
      [| V.Null; V.Int 7500L; V.Null; V.Int 60L |];
      [| V.Str "GOOG"; V.Int 8000L; V.Null; V.Int 125L |];
      [| V.Str "MSFT"; V.Int 9000L; V.Float 19.5; V.Int 400L |];
      [| V.Str "GOOG"; V.Int 10000L; V.Float 140.0; V.Int 10L |];
    ];
  Db.load_table db
    (S.table "quotes"
       [
         S.column "sym" Ty.TVarchar;
         S.column "bid" Ty.TDouble;
         S.column "ask" Ty.TDouble;
       ])
    [
      [| V.Str "AAPL"; V.Float 9.5; V.Float 10.5 |];
      [| V.Str "AAPL"; V.Float 9.75; V.Null |];
      [| V.Str "MSFT"; V.Float 19.0; V.Float 21.0 |];
      [| V.Str "IBM"; V.Float 94.0; V.Float 96.0 |];
      [| V.Null; V.Float 1.0; V.Float 2.0 |];
      [| V.Str "GOOG"; V.Float 139.0; V.Float 141.0 |];
      [| V.Str "TSLA"; V.Float 200.0; V.Float 201.0 |];
      [| V.Str "MSFT"; V.Null; V.Float 21.5 |];
    ];
  Db.load_table db
    (S.table "secmaster"
       [ S.column "sym" Ty.TVarchar; S.column "sector" Ty.TVarchar ])
    [
      [| V.Str "AAPL"; V.Str "tech" |];
      [| V.Str "MSFT"; V.Str "tech" |];
      [| V.Str "IBM"; V.Str "services" |];
      [| V.Str "GOOG"; V.Str "tech" |];
      [| V.Str "ORCL"; V.Str "tech" |];
      [| V.Null; V.Str "unknown" |];
    ];
  db

(* random 2- and 3-table equi-joins (inner and left outer, including
   null-safe ON clauses), WHERE mixing both sides' columns, grouped and
   scalar aggregates over the joined batch *)
let gen_join_query (rng : Random.State.t) : string =
  let pick a = a.(Random.State.int rng (Array.length a)) in
  let jk () = pick [| "JOIN"; "JOIN"; "LEFT JOIN" |] in
  let on l r =
    if Random.State.int rng 4 = 0 then
      Printf.sprintf "%s.sym IS NOT DISTINCT FROM %s.sym" l r
    else Printf.sprintf "%s.sym = %s.sym" l r
  in
  let conjunct () =
    match Random.State.int rng 9 with
    | 0 -> Printf.sprintf "t.price > %.2f" (Random.State.float rng 150.0)
    | 1 -> Printf.sprintf "t.size <= %d" (Random.State.int rng 400)
    | 2 -> Printf.sprintf "q.bid >= %.2f" (Random.State.float rng 100.0)
    | 3 -> "q.ask IS NOT NULL"
    | 4 -> Printf.sprintf "t.sym = '%s'" (pick [| "AAPL"; "MSFT"; "ZZZ" |])
    | 5 -> "t.price IS NULL"
    | 6 ->
        Printf.sprintf "t.size + q.bid > %d" (50 + Random.State.int rng 300)
    | 7 -> "t.price * 2 > q.ask"
    | _ -> Printf.sprintf "q.bid BETWEEN %d AND %d"
             (Random.State.int rng 50) (50 + Random.State.int rng 200)
  in
  let where () =
    match Random.State.int rng 3 with
    | 0 -> ""
    | n ->
        " WHERE "
        ^ String.concat " AND " (List.init n (fun _ -> conjunct ()))
  in
  let limit () =
    if Random.State.bool rng then ""
    else Printf.sprintf " LIMIT %d" (1 + Random.State.int rng 20)
  in
  match Random.State.int rng 6 with
  | 0 ->
      Printf.sprintf
        "SELECT t.sym, t.price, q.bid, q.ask FROM trades t %s quotes q ON \
         %s%s%s"
        (jk ()) (on "t" "q") (where ()) (limit ())
  | 1 ->
      (* all-column projection over a join: the colmajor output shape *)
      Printf.sprintf "SELECT * FROM trades t %s quotes q ON %s%s" (jk ())
        (on "t" "q") (where ())
  | 2 ->
      Printf.sprintf
        "SELECT t.sym, q.bid, s.sector FROM trades t %s quotes q ON %s %s \
         secmaster s ON %s%s%s"
        (jk ()) (on "t" "q") (jk ()) (on "t" "s") (where ()) (limit ())
  | 3 ->
      (* self-join: duplicate key fan-out in both build and probe *)
      Printf.sprintf
        "SELECT a.sym, a.size, b.size AS bsize FROM trades a %s trades b ON \
         %s%s"
        (jk ()) (on "a" "b")
        (if Random.State.bool rng then "" else " WHERE a.size < b.size")
  | 4 ->
      Printf.sprintf
        "SELECT t.sym, count(*) AS n, sum(t.size) AS sz, avg(q.bid) AS ab \
         FROM trades t %s quotes q ON %s%s GROUP BY t.sym"
        (jk ()) (on "t" "q") (where ())
  | _ ->
      Printf.sprintf
        "SELECT count(*) AS n, sum(q.bid) AS b, min(t.price) AS lo FROM \
         trades t %s quotes q ON %s%s"
        (jk ()) (on "t" "q") (where ())

(* hash-partition the join fixture the way Shard.Cluster lays tables out:
   trades and quotes distribute on sym, secmaster replicates. The
   vectorized executor then runs against each shard's pgdb exactly as a
   cluster fan-out would drive it. *)
let shard_dbs ~shards db =
  let m =
    Shard.Shardmap.create ~shards
      ~distributions:[ ("trades", "sym"); ("quotes", "sym") ]
  in
  let out = Array.init shards (fun _ -> Db.create ()) in
  Hashtbl.iter
    (fun name (tbl : Pgdb.Storage.table) ->
      if name <> "pg_catalog_columns" then begin
        let def = tbl.Pgdb.Storage.def in
        let rows = Array.to_list tbl.Pgdb.Storage.rows in
        match Pgdb.Storage.column_index tbl "sym" with
        | Some ci when Shard.Shardmap.is_distributed m name ->
            Array.iteri
              (fun s sdb ->
                Db.load_table sdb def
                  (List.filter
                     (fun r -> Shard.Shardmap.shard_of_value m r.(ci) = s)
                     rows))
              out
        | _ -> Array.iter (fun sdb -> Db.load_table sdb def rows) out
      end)
    db.Pgdb.Db.tables;
  out

let test_join_differential () =
  let db = join_fixture () in
  let von = session ~vectorized:true db in
  let voff = session ~vectorized:false db in
  let rng = Random.State.make [| 0x10ca1; 77 |] in
  let v0 = Atomic.get Vexec.stats_vector in
  (* single node: 400 randomized join queries, byte-identical results *)
  for _ = 1 to 400 do
    let sql = gen_join_query rng in
    check_same sql (run von sql) (run voff sql)
  done;
  let served = Atomic.get Vexec.stats_vector - v0 in
  if served < 200 then
    Alcotest.failf "vector path served only %d/400 join queries" served;
  (* 2 shards: the same differential over each hash partition, where
     null keys, key skew and empty probe sides land differently *)
  let shards = shard_dbs ~shards:2 db in
  Array.iter
    (fun sdb ->
      let son = session ~vectorized:true sdb in
      let soff = session ~vectorized:false sdb in
      for _ = 1 to 200 do
        let sql = gen_join_query rng in
        check_same sql (run son sql) (run soff sql)
      done)
    shards

(* ------------------------------------------------------------------ *)
(* 3VL null semantics                                                  *)
(* ------------------------------------------------------------------ *)

let test_null_filter_survival () =
  let db = fixture () in
  let sess = session ~vectorized:true db in
  (* price has 2 NULLs among 10 rows: neither > nor <= keeps them *)
  let count sql =
    match run sess sql with
    | Ok (_, [| [| V.Int n |] |]) -> Int64.to_int n
    | _ -> Alcotest.failf "expected one count from %s" sql
  in
  let gt = count "SELECT count(*) AS n FROM trades WHERE price > 15" in
  let le = count "SELECT count(*) AS n FROM trades WHERE price <= 15" in
  check tint "NULLs survive neither side of a comparison" 8 (gt + le);
  check tint "IS NULL keeps exactly the nulls" 2
    (count "SELECT count(*) AS n FROM trades WHERE price IS NULL");
  check tint "IS NOT NULL keeps the rest" 8
    (count "SELECT count(*) AS n FROM trades WHERE price IS NOT NULL");
  (* NULL never equals anything, including via IN *)
  check tint "IN drops nulls" 0
    (count
       "SELECT count(*) AS n FROM trades WHERE price IS NULL AND price IN \
        (10, 20)");
  differential db
    [
      "SELECT sym, price FROM trades WHERE price > 15 ORDER BY sym";
      "SELECT sym FROM trades WHERE note IS NULL";
      "SELECT count(note) AS n, count(*) AS all_rows FROM trades";
    ]

(* ------------------------------------------------------------------ *)
(* Batch layer units                                                   *)
(* ------------------------------------------------------------------ *)

let test_selection_compaction () =
  let col =
    Batch.column_of_rows
      [|
        [| V.Int 1L |]; [| V.Null |]; [| V.Int 3L |]; [| V.Int 4L |];
      |]
      0
  in
  check tbool "bitmap marks the null" true (Batch.is_null col 1);
  check tbool "non-null stays clear" false (Batch.is_null col 2);
  let packed = Batch.compact col [| 0; 2 |] in
  check tbool "compacted column drops the null" false
    (Batch.is_null packed 0 || Batch.is_null packed 1);
  Alcotest.(check (list string))
    "compacted values in selection order"
    [ "1"; "3" ]
    (Array.to_list
       (Array.map
          (fun v -> match v with V.Int i -> Int64.to_string i | _ -> "?")
          (Batch.values packed (Batch.all_rows 2))));
  let with_null = Batch.compact col [| 1; 3 |] in
  check tbool "null survives compaction when selected" true
    (Batch.is_null with_null 0);
  check tbool "and the kept row stays non-null" false
    (Batch.is_null with_null 1)

let test_empty_batch () =
  let db = Db.create () in
  Db.load_table db
    (S.table "empty_t"
       [ S.column "a" Ty.TBigint; S.column "b" Ty.TVarchar ])
    [];
  differential db
    [
      "SELECT a, b FROM empty_t";
      "SELECT a FROM empty_t WHERE a > 5 ORDER BY a DESC LIMIT 3";
      "SELECT count(*) AS n, sum(a) AS s, min(a) AS lo FROM empty_t";
      "SELECT b, count(*) AS n FROM empty_t GROUP BY b";
    ];
  let b = Batch.of_rows ~width:2 [||] in
  check tint "zero-row batch" 0 b.Batch.nrows

let test_all_null_column () =
  let db = Db.create () in
  Db.load_table db
    (S.table "nulls_t" [ S.column "k" Ty.TVarchar; S.column "v" Ty.TDouble ])
    [
      [| V.Str "a"; V.Null |];
      [| V.Str "b"; V.Null |];
      [| V.Str "a"; V.Null |];
    ];
  differential db
    [
      "SELECT sum(v) AS s, min(v) AS lo, max(v) AS hi, avg(v) AS m, \
       count(v) AS n FROM nulls_t";
      "SELECT k, sum(v) AS s FROM nulls_t GROUP BY k ORDER BY k";
      "SELECT k FROM nulls_t WHERE v > 0";
      "SELECT k, v FROM nulls_t WHERE v IS NULL";
    ];
  let sess = session ~vectorized:true db in
  match run sess "SELECT sum(v) AS s, count(v) AS n FROM nulls_t" with
  | Ok (_, [| [| V.Null; V.Int 0L |] |]) -> ()
  | _ -> Alcotest.fail "all-null aggregate should be (NULL, 0)"

(* ------------------------------------------------------------------ *)
(* Explain, colmajor hand-off, counters, feedback                      *)
(* ------------------------------------------------------------------ *)

let test_explain_vector_nodes () =
  let db = fixture () in
  let sess = session ~vectorized:true db in
  Db.set_analyze sess true;
  ignore
    (run sess
       "SELECT sym, count(*) AS n FROM trades WHERE price > 10 AND size < \
        350 GROUP BY sym ORDER BY sym LIMIT 3");
  match Db.last_plan sess with
  | None -> Alcotest.fail "analyzed vectorized query produced no plan"
  | Some root ->
      let ops = List.map (fun (_, n) -> n.Op.op) (Op.flatten root) in
      let has op = List.mem op ops in
      check tbool "vector_scan node" true (has "vector_scan");
      check tbool "vector_filter node" true (has "vector_filter");
      check tbool "vector_hash_agg node" true (has "vector_hash_agg");
      check tbool "vector_sort node" true (has "vector_sort");
      check tbool "vector_limit node" true (has "vector_limit");
      let scan =
        List.find (fun (_, n) -> n.Op.op = "vector_scan") (Op.flatten root)
        |> snd
      in
      check tint "scan est = table rows" 10 scan.Op.est_rows;
      check tint "scan actual = table rows" 10 scan.Op.rows_out;
      check tint "plan-wide rows_scanned counts vector scans" 10
        (Op.rows_scanned root)

let test_colmajor_handoff () =
  let db = fixture () in
  let sess = session ~vectorized:true db in
  (match Db.exec sess "SELECT sym, price FROM trades WHERE size >= 200" with
  | Db.Rows (res, _) -> (
      match Db.take_colmajor sess with
      | None -> Alcotest.fail "plain-column select should yield colmajor"
      | Some cm ->
          check tint "one vector per column" 2 (Array.length cm);
          Array.iteri
            (fun j col ->
              check tint "column length = row count"
                (Array.length res.Pgdb.Exec.res_rows)
                (Array.length col);
              Array.iteri
                (fun i v ->
                  check tbool "colmajor agrees with rows" true
                    (Stdlib.compare v res.Pgdb.Exec.res_rows.(i).(j) = 0))
                col)
            cm)
  | Db.Complete _ -> Alcotest.fail "expected rows");
  check tbool "take_colmajor consumes" true (Db.take_colmajor sess = None);
  (* expression projections materialize rows: no columnar output *)
  ignore (Db.exec sess "SELECT price * 2 AS p2 FROM trades");
  check tbool "expression select yields no colmajor" true
    (Db.take_colmajor sess = None)

let test_path_counters () =
  let db = fixture () in
  let von = session ~vectorized:true db in
  let voff = session ~vectorized:false db in
  let v0 = Atomic.get Vexec.stats_vector in
  let r0 = Atomic.get Vexec.stats_row in
  let f0 = Atomic.get Vexec.stats_fallback in
  ignore (run von "SELECT sym FROM trades WHERE size > 100");
  check tint "vector counter" 1 (Atomic.get Vexec.stats_vector - v0);
  check tint "no fallback" 0 (Atomic.get Vexec.stats_fallback - f0);
  (* joins are outside the lowerable fragment: fallback + row *)
  ignore
    (run von
       "SELECT t.sym FROM trades t, trades u WHERE t.sym = u.sym LIMIT 1");
  check tbool "join falls back" true
    (Atomic.get Vexec.stats_fallback - f0 >= 1
    && Atomic.get Vexec.stats_row - r0 >= 1);
  let r1 = Atomic.get Vexec.stats_row in
  let f1 = Atomic.get Vexec.stats_fallback in
  ignore (run voff "SELECT sym FROM trades");
  check tint "vectorized-off counts as row" 1
    (Atomic.get Vexec.stats_row - r1);
  check tint "vectorized-off is not a fallback" 0
    (Atomic.get Vexec.stats_fallback - f1)

let test_selectivity_feedback () =
  let db = fixture () in
  let sess = session ~vectorized:true db in
  Vexec.reset_selectivities ();
  for _ = 1 to 5 do
    ignore
      (run sess
         "SELECT sym FROM trades WHERE price > 100 AND size > 0")
  done;
  let snap = Vexec.selectivity_snapshot () in
  check tbool "both conjuncts tracked" true (List.length snap >= 2);
  List.iter
    (fun (_, s) ->
      check tbool "selectivity estimate in [0,1]" true (s >= 0.0 && s <= 1.0))
    snap;
  (* literal-stripped keys: the same shape with other constants shares
     the entry instead of creating a new one *)
  let n0 = List.length snap in
  ignore (run sess "SELECT sym FROM trades WHERE price > 11 AND size > 90");
  check tint "literal-stripped conjunct keys dedupe" n0
    (List.length (Vexec.selectivity_snapshot ()));
  (* price > 100 keeps 1 of 10 rows: the learned estimate must have
     moved well below the 1/3 default toward the observed 0.1 *)
  let key =
    List.find_opt (fun (k, _) -> k <> "") snap |> Option.map fst
  in
  check tbool "snapshot keys are non-empty" true (key <> None);
  Vexec.reset_selectivities ();
  check tint "reset empties the store" 0
    (List.length (Vexec.selectivity_snapshot ()))

(* eviction regression: a full selectivity store must shed only cold
   keys. The old behaviour (Hashtbl.reset on overflow) wiped every
   learned EWMA; the second-chance clock keeps recently-consulted keys
   and their estimates across overflow. *)
let test_selectivity_eviction_keeps_hot_keys () =
  Vexec.reset_selectivities ();
  let cap = 1024 in
  for i = 0 to cap - 1 do
    Vexec.observe_selectivity (Printf.sprintf "t|k%04d" i) 0.5
  done;
  check tint "filled to capacity" cap
    (List.length (Vexec.selectivity_snapshot ()));
  (* one overflow sweeps the clock (everything was hot) and evicts a
     single victim — not the whole store *)
  Vexec.observe_selectivity "t|overflow" 0.25;
  check tint "overflow evicts one, not all" cap
    (List.length (Vexec.selectivity_snapshot ()));
  (* consult a few keys so they are hot when the next sweeps arrive *)
  let hot = [ "t|k0100"; "t|k0500"; "t|k0900" ] in
  List.iter (fun k -> ignore (Vexec.estimated_selectivity k)) hot;
  for i = 0 to 49 do
    Vexec.observe_selectivity (Printf.sprintf "t|new%02d" i) 0.75
  done;
  let snap = Vexec.selectivity_snapshot () in
  check tint "store stays at capacity" cap (List.length snap);
  List.iter
    (fun k ->
      match List.assoc_opt k snap with
      | Some e ->
          check (Alcotest.float 1e-9) (k ^ " keeps its learned EWMA") 0.5 e
      | None -> Alcotest.failf "hot key %s was evicted" k)
    hot;
  (* the new keys all made it in, so cold keys were the victims *)
  check tint "all new keys inserted" 50
    (List.length
       (List.filter (fun (k, _) -> String.length k > 5
                                   && String.sub k 0 5 = "t|new") snap));
  Vexec.reset_selectivities ()

(* views expand through the row path (resolve_batch only serves base
   tables), but must still be answerable with vectorization on *)
let test_views_and_temps_fall_back () =
  let db = fixture () in
  let setup = session ~vectorized:true db in
  ignore
    (Db.exec setup "CREATE VIEW big AS SELECT * FROM trades WHERE size > 100");
  ignore
    (Db.exec setup
       "CREATE TEMP TABLE scratch AS SELECT sym, size FROM trades");
  differential db
    [
      "SELECT sym, size FROM big ORDER BY size DESC LIMIT 3";
      "SELECT count(*) AS n FROM big";
    ];
  (* temp tables are per-session; the creating session must still get
     vectorized execution over them via the temp-table batch *)
  match run setup "SELECT sym, sum(size) AS s FROM scratch GROUP BY sym" with
  | Ok (_, rows) -> check tbool "temp table grouped" true (Array.length rows > 0)
  | Error e -> Alcotest.failf "temp table query failed: %s" e

let () =
  Alcotest.run "vexec"
    [
      ( "differential",
        [
          Alcotest.test_case "200 randomized queries, zero divergence" `Quick
            test_differential_200;
          Alcotest.test_case
            "400+ randomized joins, single-node and 2 shards, zero divergence"
            `Quick test_join_differential;
        ] );
      ( "nulls",
        [
          Alcotest.test_case "3VL filter survival" `Quick
            test_null_filter_survival;
          Alcotest.test_case "all-null column" `Quick test_all_null_column;
        ] );
      ( "batch",
        [
          Alcotest.test_case "selection-vector compaction" `Quick
            test_selection_compaction;
          Alcotest.test_case "empty batch" `Quick test_empty_batch;
        ] );
      ( "integration",
        [
          Alcotest.test_case "explain shows vector nodes" `Quick
            test_explain_vector_nodes;
          Alcotest.test_case "columnar hand-off to the pivot" `Quick
            test_colmajor_handoff;
          Alcotest.test_case "path counters" `Quick test_path_counters;
          Alcotest.test_case "selectivity feedback" `Quick
            test_selectivity_feedback;
          Alcotest.test_case "eviction keeps hot keys" `Quick
            test_selectivity_eviction_keeps_hot_keys;
          Alcotest.test_case "views and temps" `Quick
            test_views_and_temps_fall_back;
        ] );
    ]
