(* Tests for the workload generator (lib/workload): deterministic data,
   paper-shaped schema, and well-formed queries. *)

module MD = Workload.Marketdata
module AW = Workload.Analytical

let check = Alcotest.check
let tint = Alcotest.int
let tbool = Alcotest.bool

let test_determinism () =
  (* same seed, same data — benchmarks and side-by-side runs must agree *)
  let d1 = MD.generate MD.small_scale in
  let d2 = MD.generate MD.small_scale in
  check tint "same trade count" (Array.length d1.MD.trades)
    (Array.length d2.MD.trades);
  check tbool "identical trades" true (d1.MD.trades = d2.MD.trades);
  check tbool "identical quotes" true (d1.MD.quotes = d2.MD.quotes);
  (* a different seed changes the data *)
  let d3 = MD.generate ~seed:7 MD.small_scale in
  check tbool "different seed differs" false (d1.MD.trades = d3.MD.trades)

let test_scale () =
  let d = MD.generate MD.small_scale in
  check tint "trades = symbols * per-symbol"
    (MD.small_scale.MD.symbols * MD.small_scale.MD.trades_per_symbol)
    (Array.length d.MD.trades);
  check tint "quotes = symbols * per-symbol"
    (MD.small_scale.MD.symbols * MD.small_scale.MD.quotes_per_symbol)
    (Array.length d.MD.quotes)

let test_feed_is_time_ordered () =
  (* ticks arrive in time order, as a real consolidated feed *)
  let d = MD.generate MD.small_scale in
  let ordered = ref true in
  Array.iteri
    (fun i t ->
      if i > 0 && t.MD.t_time < d.MD.trades.(i - 1).MD.t_time then
        ordered := false)
    d.MD.trades;
  check tbool "trades time-ordered" true !ordered

let test_paper_shape_wide_tables () =
  (* the paper's workload: tables with more than 500 columns *)
  let d = MD.generate MD.paper_scale in
  let db = Pgdb.Db.create () in
  MD.load_pg db d;
  let sess = Pgdb.Db.open_session db in
  List.iter
    (fun name ->
      match Pgdb.Db.describe_table sess name with
      | Some def ->
          let n = List.length def.Catalog.Schema.tbl_columns in
          check tbool (name ^ " has >500 columns") true (n > 500);
          check tbool (name ^ " keyed on Symbol") true
            (def.Catalog.Schema.tbl_keys = [ "Symbol" ])
      | None -> Alcotest.failf "%s missing" name)
    [ "secmaster_w"; "risk_w"; "limits_w" ];
  (* fact tables carry the implicit order column *)
  match Pgdb.Db.describe_table sess "trades" with
  | Some def ->
      check tbool "order column mapped" true
        (def.Catalog.Schema.tbl_order_col = Some "hq_ord")
  | None -> Alcotest.fail "trades missing"

let test_quotes_straddle_trades () =
  (* every symbol's first quote precedes its first trade, so as-of joins
     can always find a prevailing quote after the open *)
  let d = MD.generate MD.small_scale in
  Array.iter
    (fun sym ->
      let first_trade =
        Array.to_list d.MD.trades
        |> List.filter (fun t -> t.MD.t_sym = sym)
        |> List.map (fun t -> t.MD.t_time)
        |> List.fold_left min max_int
      in
      let first_quote =
        Array.to_list d.MD.quotes
        |> List.filter (fun q -> q.MD.q_sym = sym)
        |> List.map (fun q -> q.MD.q_time)
        |> List.fold_left min max_int
      in
      check tbool (sym ^ ": quote before first trade") true
        (first_quote <= first_trade))
    d.MD.syms

let test_workload_has_25_queries () =
  let d = MD.generate MD.small_scale in
  let qs = AW.queries d in
  check tint "25 queries" 25 (List.length qs);
  (* ids are 1..25 in order *)
  List.iteri
    (fun i q -> check tint "sequential ids" (i + 1) q.AW.id)
    qs;
  (* the paper's spike queries join three or more tables *)
  List.iter
    (fun id ->
      let q = List.find (fun q -> q.AW.id = id) qs in
      check tbool
        (Printf.sprintf "Q%d joins 3+ tables" id)
        true
        (List.length q.AW.tables >= 3))
    AW.heavy_ids

let test_all_queries_parse () =
  let d = MD.generate MD.small_scale in
  List.iter
    (fun q ->
      List.iter
        (fun setup ->
          match Qlang.Parser.parse_program setup with
          | _ -> ()
          | exception e ->
              Alcotest.failf "Q%d setup does not parse: %s" q.AW.id
                (Printexc.to_string e))
        q.AW.setup;
      match Qlang.Parser.parse_program q.AW.text with
      | [ _ ] -> ()
      | stmts ->
          Alcotest.failf "Q%d parses to %d statements" q.AW.id
            (List.length stmts)
      | exception e ->
          Alcotest.failf "Q%d does not parse: %s" q.AW.id
            (Printexc.to_string e))
    (AW.queries d)

let test_pg_and_kdb_loads_agree () =
  (* the two loaders must materialise identical wide-table contents (the
     shared-RNG discipline) *)
  let d = MD.generate MD.small_scale in
  let db = Pgdb.Db.create () in
  MD.load_pg db d;
  let sess = Pgdb.Db.open_session db in
  let kdb_tables = MD.q_tables d in
  let secmaster_kdb =
    match List.assoc "secmaster_w" kdb_tables with
    | v -> Qvalue.Value.unkey v
  in
  match
    Pgdb.Db.exec sess
      "SELECT \"Sector\" FROM secmaster_w ORDER BY \"Symbol\" ASC"
  with
  | Pgdb.Db.Rows (res, _) ->
      let pg_sectors =
        Array.to_list res.Pgdb.Exec.res_rows
        |> List.map (fun row ->
               match row.(0) with Pgdb.Value.Str s -> s | _ -> "?")
      in
      let kdb_sorted =
        match secmaster_kdb with
        | Qvalue.Value.Table t ->
            let syms = Qvalue.Value.column_exn t "Symbol" in
            let sectors = Qvalue.Value.column_exn t "Sector" in
            let idx = Qvalue.Value.grade_up syms in
            Array.to_list idx
            |> List.map (fun i ->
                   match Qvalue.Value.index sectors i with
                   | Qvalue.Value.Atom (Qvalue.Atom.Sym s) -> s
                   | _ -> "?")
        | _ -> []
      in
      check (Alcotest.list Alcotest.string) "sector assignment identical"
        kdb_sorted pg_sectors
  | _ -> Alcotest.fail "catalog query failed"

let () =
  Alcotest.run "workload"
    [
      ( "generator",
        [
          Alcotest.test_case "deterministic" `Quick test_determinism;
          Alcotest.test_case "scale arithmetic" `Quick test_scale;
          Alcotest.test_case "feed time-ordered" `Quick
            test_feed_is_time_ordered;
          Alcotest.test_case "wide tables >500 cols" `Quick
            test_paper_shape_wide_tables;
          Alcotest.test_case "quotes precede trades" `Quick
            test_quotes_straddle_trades;
          Alcotest.test_case "pg/kdb loads agree" `Quick
            test_pg_and_kdb_loads_agree;
        ] );
      ( "analytical workload",
        [
          Alcotest.test_case "25 queries, heavy ids" `Quick
            test_workload_has_25_queries;
          Alcotest.test_case "all queries parse" `Quick test_all_queries_parse;
        ] );
    ]
