(* Tests for the XTRA algebra (lib/xtra) and the Xformer/Serializer
   invariants: derived properties, transformation correctness, and a
   random-query translation-equivalence property. *)

module I = Xtra.Ir
module A = Sqlast.Ast
module Ty = Catalog.Sqltype
module X = Hyperq.Xformer

let check = Alcotest.check
let tint = Alcotest.int
let tbool = Alcotest.bool
let tstr = Alcotest.string

let col n ty = { I.cr_name = n; cr_type = ty }

let trades_get =
  I.Get
    {
      table = "trades";
      cols =
        [
          col "hq_ord" Ty.TBigint;
          col "sym" Ty.TVarchar;
          col "px" Ty.TDouble;
          col "qty" Ty.TBigint;
        ];
      ordcol = Some "hq_ord";
    }

(* ------------------------------------------------------------------ *)
(* Derived properties                                                  *)
(* ------------------------------------------------------------------ *)

let test_output_cols () =
  let p =
    I.Project
      { input = trades_get; exprs = [ ("notional", I.Arith (`Mul, I.ColRef "px", I.ColRef "qty")) ] }
  in
  (match I.output_cols p with
  | [ { I.cr_name = "notional"; cr_type = Ty.TDouble } ] -> ()
  | _ -> Alcotest.fail "projection output cols");
  let agg =
    I.Aggregate
      {
        input = trades_get;
        keys = [ ("sym", I.ColRef "sym") ];
        aggs = [ ("n", I.AggFun { fn = "count"; distinct = false; args = [] }) ];
      }
  in
  match I.output_cols agg with
  | [ { I.cr_name = "sym"; cr_type = Ty.TVarchar };
      { I.cr_name = "n"; cr_type = Ty.TBigint } ] -> ()
  | _ -> Alcotest.fail "aggregate output cols"

let test_order_col_propagation () =
  check (Alcotest.option tstr) "get" (Some "hq_ord") (I.order_col trades_get);
  let f = I.Filter { input = trades_get; pred = I.Cmp (`Gt, I.ColRef "px", I.Const (A.Float 1.0, Ty.TDouble)) } in
  check (Alcotest.option tstr) "filter preserves" (Some "hq_ord")
    (I.order_col f);
  (* a projection keeps the order column only if it passes it through *)
  let keeps =
    I.Project
      { input = trades_get;
        exprs = [ ("hq_ord", I.ColRef "hq_ord"); ("px", I.ColRef "px") ] }
  in
  check (Alcotest.option tstr) "project keeps" (Some "hq_ord")
    (I.order_col keeps);
  let drops = I.Project { input = trades_get; exprs = [ ("px", I.ColRef "px") ] } in
  check (Alcotest.option tstr) "project drops" None (I.order_col drops);
  (* aggregation destroys the input order *)
  let agg = I.Aggregate { input = trades_get; keys = []; aggs = [] } in
  check (Alcotest.option tstr) "aggregate destroys" None (I.order_col agg)

let test_is_scalar () =
  check tbool "scalar aggregate" true
    (I.is_scalar (I.Aggregate { input = trades_get; keys = []; aggs = [] }));
  check tbool "grouped is not scalar" false
    (I.is_scalar
       (I.Aggregate
          { input = trades_get; keys = [ ("sym", I.ColRef "sym") ]; aggs = [] }));
  check tbool "get is not scalar" false (I.is_scalar trades_get)

let test_scalar_type_derivation () =
  let cols = [ col "px" Ty.TDouble; col "qty" Ty.TBigint; col "d" Ty.TDate ] in
  check tbool "bigint*double -> double" true
    (I.scalar_type cols (I.Arith (`Mul, I.ColRef "px", I.ColRef "qty")) = Ty.TDouble);
  check tbool "div is double" true
    (I.scalar_type cols (I.Arith (`Div, I.ColRef "qty", I.ColRef "qty")) = Ty.TDouble);
  check tbool "date+int is date" true
    (I.scalar_type cols (I.Arith (`Add, I.ColRef "d", I.ColRef "qty")) = Ty.TDate);
  check tbool "date-date is bigint" true
    (I.scalar_type cols (I.Arith (`Sub, I.ColRef "d", I.ColRef "d")) = Ty.TBigint);
  check tbool "comparison is bool" true
    (I.scalar_type cols (I.Cmp (`Lt, I.ColRef "px", I.ColRef "qty")) = Ty.TBool)

(* ------------------------------------------------------------------ *)
(* Transformations                                                     *)
(* ------------------------------------------------------------------ *)

let test_2vl_pass () =
  let r =
    I.Filter
      { input = trades_get;
        pred = I.Eq2 (I.ColRef "sym", I.Const (A.Str "a", Ty.TVarchar)) }
  in
  check tbool "before: contains Eq2" false (X.check_no_eq2 r);
  let r' = X.two_valued_logic r in
  check tbool "after: no Eq2" true (X.check_no_eq2 r')

let test_filter_fusion () =
  let p c = I.Cmp (`Gt, I.ColRef "px", I.Const (A.Float c, Ty.TDouble)) in
  let r = I.Filter { input = I.Filter { input = trades_get; pred = p 1.0 }; pred = p 2.0 } in
  match X.filter_fusion r with
  | I.Filter { input = I.Get _; pred = I.Logic (`And, _, _) } -> ()
  | _ -> Alcotest.fail "filters should fuse into one conjunction"

let test_pruning_trims_get () =
  let r = I.Project { input = trades_get; exprs = [ ("px", I.ColRef "px") ] } in
  match X.column_pruning r with
  | I.Project { input = I.Get { cols; _ }; _ } ->
      check tint "only px survives" 1 (List.length cols)
  | _ -> Alcotest.fail "pruning shape"

let test_pruning_keeps_filter_cols () =
  let r =
    I.Project
      {
        input =
          I.Filter
            { input = trades_get;
              pred = I.Cmp (`Gt, I.ColRef "qty", I.Const (A.Int 0L, Ty.TBigint)) };
        exprs = [ ("px", I.ColRef "px") ];
      }
  in
  match X.column_pruning r with
  | I.Project { input = I.Filter { input = I.Get { cols; _ }; _ }; _ } ->
      let names = List.map (fun c -> c.I.cr_name) cols in
      check tbool "px kept" true (List.mem "px" names);
      check tbool "qty kept for the filter" true (List.mem "qty" names);
      check tbool "sym pruned" false (List.mem "sym" names)
  | _ -> Alcotest.fail "pruning shape"

let test_order_enforcement () =
  match X.enforce_root_order trades_get with
  | I.Sort { keys = [ { I.sk_expr = I.ColRef "hq_ord"; sk_dir = `Asc } ]; _ }
    -> ()
  | _ -> Alcotest.fail "root order not enforced"

let test_order_elision () =
  let sorted =
    I.Sort
      { input = trades_get;
        keys = [ { I.sk_expr = I.ColRef "hq_ord"; sk_dir = `Asc } ] }
  in
  let agg_of input aggs = I.Aggregate { input; keys = []; aggs } in
  (* order-insensitive aggregate: sort elided *)
  (match
     X.elide_sorts_under_aggregates
       (agg_of sorted [ ("s", I.AggFun { fn = "sum"; distinct = false; args = [ I.ColRef "px" ] }) ])
   with
  | I.Aggregate { input = I.Get _; _ } -> ()
  | _ -> Alcotest.fail "sum should allow elision");
  (* order-sensitive aggregate: sort kept *)
  match
    X.elide_sorts_under_aggregates
      (agg_of sorted [ ("f", I.AggFun { fn = "first"; distinct = false; args = [ I.ColRef "px" ] }) ])
  with
  | I.Aggregate { input = I.Sort _; _ } -> ()
  | _ -> Alcotest.fail "first must keep ordering"

(* ------------------------------------------------------------------ *)
(* Serializer                                                          *)
(* ------------------------------------------------------------------ *)

let test_serializer_rejects_eq2 () =
  let r =
    I.Filter
      { input = trades_get;
        pred = I.Eq2 (I.ColRef "sym", I.Const (A.Str "a", Ty.TVarchar)) }
  in
  match Hyperq.Serializer.serialize_to_sql r with
  | exception Hyperq.Serializer.Serialize_error _ -> ()
  | sql -> Alcotest.failf "Eq2 must not serialize, got %s" sql

let test_serializer_flattens () =
  (* project-over-filter-over-get stays one SELECT *)
  let r =
    I.Project
      {
        input =
          I.Filter
            { input = trades_get;
              pred =
                I.NullSafeEq (I.ColRef "sym", I.Const (A.Str "a", Ty.TVarchar)) };
        exprs = [ ("px", I.ColRef "px") ];
      }
  in
  let sql = Hyperq.Serializer.serialize_to_sql r in
  let count_sub needle hay =
    let n = String.length needle in
    let rec go i acc =
      if i + n > String.length hay then acc
      else if String.sub hay i n = needle then go (i + 1) (acc + 1)
      else go (i + 1) acc
    in
    go 0 0
  in
  check tint "single SELECT" 1 (count_sub "SELECT" sql)

let test_generated_sql_parses () =
  (* everything the serializer emits must be accepted by the pgdb parser *)
  let rels =
    [
      trades_get;
      I.Filter
        { input = trades_get;
          pred = I.NullSafeEq (I.ColRef "sym", I.Const (A.Str "a", Ty.TVarchar)) };
      I.Aggregate
        {
          input = trades_get;
          keys = [ ("sym", I.ColRef "sym") ];
          aggs = [ ("mx", I.AggFun { fn = "max"; distinct = false; args = [ I.ColRef "px" ] }) ];
        };
      I.Sort
        { input = trades_get;
          keys = [ { I.sk_expr = I.ColRef "px"; sk_dir = `Desc } ] };
      I.Limit { input = trades_get; n = 3 };
      I.AsofJoin
        {
          left = trades_get;
          right =
            I.Get
              {
                table = "quotes";
                cols = [ col "sym" Ty.TVarchar; col "hq_ord" Ty.TBigint; col "bid" Ty.TDouble ];
                ordcol = Some "hq_ord";
              };
          eq_cols = [ "sym" ];
          ts_col = "hq_ord";
          keep_right_time = false;
        };
      I.WindowOp
        {
          input = trades_get;
          wins =
            [
              ( "rs",
                I.WinFun
                  { fn = "sum"; args = [ I.ColRef "qty" ]; partition = [ I.ColRef "sym" ];
                    order = [ (I.ColRef "hq_ord", `Asc) ];
                    frame =
                      Some { A.frame_mode = `Rows; lo = A.UnboundedPreceding; hi = A.CurrentRow } } );
            ];
        };
    ]
  in
  List.iter
    (fun r ->
      let sql = Hyperq.Serializer.serialize_to_sql r in
      match Pgdb.Sql_parser.parse sql with
      | A.Select sel ->
          (* print . parse is a fixpoint: reparsing the printed form gives
             the same text *)
          let printed = A.select_str sel in
          (match Pgdb.Sql_parser.parse printed with
          | A.Select sel2 ->
              check Alcotest.string "print/parse fixpoint" printed
                (A.select_str sel2)
          | _ -> Alcotest.fail "reparse changed statement kind")
      | _ -> Alcotest.failf "parsed to non-select: %s" sql
      | exception Pgdb.Errors.Sql_error { message; _ } ->
          Alcotest.failf "generated SQL does not parse (%s): %s" message sql)
    rels

(* ------------------------------------------------------------------ *)
(* Random-query translation equivalence                                *)
(* ------------------------------------------------------------------ *)

(* generate random simple q-sql over the shared fixture and require the
   kdb interpreter and Hyper-Q->pgdb to agree — a randomized version of
   the paper's side-by-side QA *)

let gen_query : string QCheck.Gen.t =
  let open QCheck.Gen in
  let agg = oneofl [ "sum"; "avg"; "max"; "min"; "count" ] in
  let numcol = oneofl [ "Price"; "Size" ] in
  let filter =
    oneof
      [
        (let* c = numcol in
         let* v = int_range 1 100 in
         return (Printf.sprintf "%s>%d" c v));
        (let* s = oneofl [ "AAA"; "BBH"; "CCO" ] in
         return (Printf.sprintf "Symbol=`%s" s));
        (let* s = oneofl [ "N"; "Q" ] in
         return (Printf.sprintf "Exch=`%s" s));
      ]
  in
  let agg_col =
    let* a = agg in
    let* c = numcol in
    return (Printf.sprintf "%s_%s:%s %s" a c a c)
  in
  let* n_aggs = int_range 1 3 in
  let* aggs = list_repeat n_aggs agg_col in
  let* by = oneofl [ ""; " by Symbol"; " by Symbol, Exch"; " by Exch" ] in
  let* n_filters = int_range 0 2 in
  let* filters = list_repeat n_filters filter in
  let where =
    if filters = [] then ""
    else " where " ^ String.concat ", " filters
  in
  return
    (Printf.sprintf "select %s%s from trades%s" (String.concat ", " aggs) by
       where)

let harness =
  lazy
    (Sidebyside.Framework.create
       (Workload.Marketdata.generate Workload.Marketdata.small_scale))

let prop_random_queries_agree =
  QCheck.Test.make ~count:120 ~name:"random q-sql agrees across stacks"
    (QCheck.make gen_query) (fun q ->
      let h = Lazy.force harness in
      match Sidebyside.Framework.compare_query h q with
      | Sidebyside.Framework.Match -> true
      | v ->
          QCheck.Test.fail_reportf "%s: %s" q
            (Sidebyside.Framework.verdict_str v))

let props = [ QCheck_alcotest.to_alcotest prop_random_queries_agree ]

let () =
  Alcotest.run "xtra"
    [
      ( "properties",
        [
          Alcotest.test_case "output columns" `Quick test_output_cols;
          Alcotest.test_case "order column propagation" `Quick
            test_order_col_propagation;
          Alcotest.test_case "is_scalar" `Quick test_is_scalar;
          Alcotest.test_case "scalar types" `Quick test_scalar_type_derivation;
        ] );
      ( "xformer",
        [
          Alcotest.test_case "2VL pass" `Quick test_2vl_pass;
          Alcotest.test_case "filter fusion" `Quick test_filter_fusion;
          Alcotest.test_case "pruning trims get" `Quick test_pruning_trims_get;
          Alcotest.test_case "pruning keeps filter cols" `Quick
            test_pruning_keeps_filter_cols;
          Alcotest.test_case "order enforcement" `Quick test_order_enforcement;
          Alcotest.test_case "order elision" `Quick test_order_elision;
        ] );
      ( "serializer",
        [
          Alcotest.test_case "rejects 2VL equality" `Quick
            test_serializer_rejects_eq2;
          Alcotest.test_case "flattens simple pipelines" `Quick
            test_serializer_flattens;
          Alcotest.test_case "generated SQL parses" `Quick
            test_generated_sql_parses;
        ] );
      ("equivalence", props);
    ]
